//! Sorting `n` keys on the globally-limited models in `O(n/m)` (Table 1
//! row 5).
//!
//! The paper routes the keys to `m·lg n` processors and runs the
//! deterministic columnsort adaptation of Adler–Byers–Karp [2]; the key
//! point is that with `q = m·lg n` sorting processors the per-processor
//! local-sort work `(n/q)·lg n = n/m` no longer dominates the `n/m`
//! communication time. We implement the same processor-count trick with a
//! *randomized sample sort* (splitter-based), which achieves the same
//! `O(n/m)` bound w.h.p. — the deterministic substrate (columnsort itself)
//! lives in [`crate::columnsort`] and is used as the reference sorter.
//! This substitution (randomized for deterministic, identical model cost
//! shape) is recorded in DESIGN.md.
//!
//! Both engines are covered: [`qsm_m`] (shared memory, staggered injection
//! slots throughout) and [`bsp_m`] (message passing, wrap-around staggered
//! sends). Every phase staggers its requests so that no machine step carries
//! more than `m` of them — the exponential penalty never fires, which the
//! tests assert by comparing against the linear-penalty price.

use crate::Measured;
use pbw_models::{div_ceil, BspM, CostModel, MachineParams, PenaltyFn, QsmM};
use pbw_sim::{BspMachine, QsmMachine, Word};
use rand::Rng;

/// Number of sorting processors: `min(p, m·⌈lg n⌉, ⌈√(n/8)⌉)`. The last cap
/// balances the two single-processor terms — splitter selection over `8q`
/// samples against per-bucket local sorts of `n/q` keys — and keeps the
/// quadratic splitter-exchange phases below `n/m`.
fn bucket_count(p: usize, m: usize, n: usize) -> usize {
    let lg = (usize::BITS - n.max(2).leading_zeros()) as usize;
    let root = ((n as f64) / 8.0).sqrt().ceil() as usize;
    p.min(m * lg).min(root).max(1)
}

/// Oversampling rate: enough samples per bucket that the splitter
/// quantiles interpolate smoothly (buckets hold random key subsets, so a
/// handful of per-bucket quantiles would clump), but bounded so the
/// splitter-selection processor's gather stays modest.
fn oversample(n: usize, m: usize, q: usize) -> usize {
    (n / (2 * m * q).max(1)).clamp(8, 24)
}

/// Per-processor stagger: the `k`-th operation of active processor `j`
/// (out of `active` concurrently active processors) lands on a slot such
/// that (a) one processor never occupies a slot twice and (b) no slot
/// carries more than `m` operations.
pub(crate) fn stagger(k: u64, j: usize, active: usize, m: usize) -> u64 {
    let c = (active.div_ceil(m)).max(1) as u64;
    k * c + (j as u64 % c)
}

/// Per-processor sample RNG: splitter samples are drawn uniformly at
/// random from each bucket's keys (deterministic per processor id) — the
/// union is then a uniform order-statistic sample of the whole input, which
/// is what the sample-sort balance argument needs.
fn sample_rng(pid: usize) -> rand_chacha::ChaCha8Rng {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x5047_5053_4f52_5421);
    rng.set_stream(pid as u64);
    rng
}

/// Split a sorted slice by splitters into `q` chunk lengths.
fn partition_counts(sorted: &[Word], splitters: &[Word]) -> Vec<usize> {
    let q = splitters.len() + 1;
    let mut counts = vec![0usize; q];
    let mut t = 0usize;
    for &k in sorted {
        while t < splitters.len() && k > splitters[t] {
            t += 1;
        }
        counts[t] += 1;
    }
    counts
}

/// Select `q−1` splitters from gathered samples.
fn select_splitters(mut samples: Vec<Word>, q: usize) -> Vec<Word> {
    samples.sort_unstable();
    let ov = samples.len() / q.max(1);
    (1..q)
        .map(|i| samples[(i * ov).min(samples.len().saturating_sub(1))])
        .collect()
}

#[derive(Debug, Clone, Default)]
struct St {
    keys: Vec<Word>,
    splitters: Vec<Word>,
    in_count: usize,
    out_offset: usize,
    result: Vec<Word>,
}

/// Sample sort on the QSM(m): `O(n/m)` for `m = O(n^{1−ε})` w.h.p.
pub fn qsm_m(params: MachineParams, inputs: &[Word]) -> Measured {
    qsm_m_detailed(params, inputs).0
}

/// As [`qsm_m`], additionally returning the run priced under every model
/// (the same execution's QSM(g) price is Table 1's honest g-column: slots
/// are free under the local metric, so staggering costs nothing there).
pub fn qsm_m_detailed(params: MachineParams, inputs: &[Word]) -> (Measured, pbw_sim::CostSummary) {
    let p = params.p;
    let m = params.m;
    let n = inputs.len();
    assert!(
        n.is_multiple_of(p),
        "input must divide evenly over processors"
    );
    let per = n / p;
    let q = bucket_count(p, m, n);
    let ov = oversample(n, m, q);
    let cap = 8 * n / q + 64;

    // Cell layout.
    let a0 = 0; // A: n cells, round-robin staging
    let samp0 = a0 + n; // q·ov samples
    let spl0 = samp0 + q * ov; // q−1 splitters
    let cnt0 = spl0 + (q - 1).max(1); // q×q counts (source-major)
    let off20 = cnt0 + q * q; // q×q in-bucket offsets
    let bcnt0 = off20 + q * q; // per-bucket totals
    let boff0 = bcnt0 + q; // global output offsets
    let b0 = boff0 + q; // buckets: q·cap
    let c0 = b0 + q * cap; // output: n
    let total_cells = c0 + n;

    let mut qsm: QsmMachine<St> = QsmMachine::new(params, total_cells, |_| St::default());

    // 1. Sources write their keys to A[gidx] (round-robin ownership by
    // gidx mod q), slot = gidx mod T (wrap-around: contiguous per-source
    // runs of ≤ T keys never collide; every slot carries ≤ m writes).
    let t_wrap = div_ceil(n as u64, m as u64).max(per as u64);
    qsm.phase(move |pid, _s, _res, ctx| {
        for k in 0..per {
            let gidx = pid * per + k;
            ctx.write_at(a0 + gidx, inputs[gidx], (gidx as u64) % t_wrap);
        }
    });
    // 2. Buckets read their cells.
    qsm.phase(move |pid, _s, _res, ctx| {
        if pid < q {
            let mut k = 0u64;
            let mut idx = pid;
            while idx < n {
                ctx.read_at(a0 + idx, stagger(k, pid, q, m));
                k += 1;
                idx += q;
            }
        }
    });
    // 3. Local sort; publish samples.
    qsm.phase(move |pid, s, res, ctx| {
        if pid < q {
            s.keys = res.iter().map(|r| r.value).collect();
            s.keys.sort_unstable();
            let len = s.keys.len().max(1) as u64;
            ctx.charge_work(len * (64 - len.leading_zeros()) as u64);
            let mut rng = sample_rng(pid);
            for t in 0..ov {
                let v = if s.keys.is_empty() {
                    Word::MAX
                } else {
                    s.keys[rng.gen_range(0..s.keys.len())]
                };
                ctx.write_at(samp0 + pid * ov + t, v, stagger(t as u64, pid, q, m));
            }
        }
    });
    // 4. Processor 0 gathers samples.
    qsm.phase(move |pid, _s, _res, ctx| {
        if pid == 0 {
            for i in 0..q * ov {
                ctx.read(samp0 + i);
            }
        }
    });
    // 5. Processor 0 selects and publishes splitters.
    qsm.phase(move |pid, _s, res, ctx| {
        if pid == 0 {
            let samples: Vec<Word> = res.iter().map(|r| r.value).collect();
            let spl = select_splitters(samples, q);
            let work = (q * ov).max(1) as u64;
            ctx.charge_work(work * (64 - work.leading_zeros()) as u64);
            for (i, &v) in spl.iter().enumerate() {
                ctx.write(spl0 + i, v);
            }
        }
    });
    // 6. Buckets read splitters, publish per-target counts.
    qsm.phase(move |pid, _s, _res, ctx| {
        if pid < q {
            for i in 0..q - 1 {
                ctx.read_at(spl0 + i, stagger(i as u64, pid, q, m));
            }
        }
    });
    qsm.phase(move |pid, s, res, ctx| {
        if pid < q {
            s.splitters = res.iter().map(|r| r.value).collect();
            let counts = partition_counts(&s.keys, &s.splitters);
            for (t, &c) in counts.iter().enumerate() {
                ctx.write_at(cnt0 + pid * q + t, c as Word, stagger(t as u64, pid, q, m));
            }
        }
    });
    // 7. Targets read their count column, compute in-bucket offsets,
    // publish them and their total.
    qsm.phase(move |pid, _s, _res, ctx| {
        if pid < q {
            for src in 0..q {
                ctx.read_at(cnt0 + src * q + pid, stagger(src as u64, pid, q, m));
            }
        }
    });
    qsm.phase(move |pid, s, res, ctx| {
        if pid < q {
            let mut off = 0usize;
            for (src, r) in res.iter().enumerate() {
                ctx.write_at(
                    off20 + src * q + pid,
                    off as Word,
                    stagger(src as u64, pid, q, m),
                );
                off += r.value as usize;
            }
            s.in_count = off;
            assert!(
                off <= cap,
                "bucket {pid} overflow: {off} > cap {cap} (raise oversampling)"
            );
            ctx.write_at(bcnt0 + pid, off as Word, stagger(q as u64, pid, q, m));
        }
    });
    // 8. Sources read their offset row.
    qsm.phase(move |pid, _s, _res, ctx| {
        if pid < q {
            for t in 0..q {
                ctx.read_at(off20 + pid * q + t, stagger(t as u64, pid, q, m));
            }
        }
    });
    // 9. Sources scatter keys into bucket regions.
    qsm.phase(move |pid, s, res, ctx| {
        if pid < q {
            let offsets: Vec<usize> = res.iter().map(|r| r.value as usize).collect();
            let counts = partition_counts(&s.keys, &s.splitters);
            let mut k = 0u64;
            let mut idx = 0usize;
            for (t, &c) in counts.iter().enumerate() {
                for i in 0..c {
                    ctx.write_at(
                        b0 + t * cap + offsets[t] + i,
                        s.keys[idx],
                        stagger(k, pid, q, m),
                    );
                    idx += 1;
                    k += 1;
                }
            }
        }
    });
    // 10. Targets read their incoming region and proc 0 gathers totals.
    qsm.phase(move |pid, s, _res, ctx| {
        if pid < q {
            for i in 0..s.in_count {
                ctx.read_at(b0 + pid * cap + i, stagger(i as u64, pid, q, m));
            }
        }
        if pid == 0 {
            for t in 0..q {
                ctx.read_at(bcnt0 + t, stagger((cap + t) as u64, pid, q, m));
            }
        }
    });
    // 11. Targets sort their bucket; proc 0 publishes global offsets.
    qsm.phase(move |pid, s, res, ctx| {
        if pid < q {
            let skip_tail = if pid == 0 { q } else { 0 };
            let upto = res.len() - skip_tail;
            s.result = res[..upto].iter().map(|r| r.value).collect();
            s.result.sort_unstable();
            let len = s.result.len().max(1) as u64;
            ctx.charge_work(len * (64 - len.leading_zeros()) as u64);
            if pid == 0 {
                let mut off = 0usize;
                for (t, r) in res[upto..].iter().enumerate() {
                    ctx.write(boff0 + t, off as Word);
                    off += r.value as usize;
                }
            }
        }
    });
    // 12. Targets learn their output offset and write the result.
    qsm.phase(move |pid, _s, _res, ctx| {
        if pid < q {
            ctx.read_at(boff0 + pid, stagger(0, pid, q, m));
        }
    });
    qsm.phase(move |pid, s, res, ctx| {
        if pid < q {
            s.out_offset = res[0].value as usize;
            for (i, &v) in s.result.iter().enumerate() {
                ctx.write_at(c0 + s.out_offset + i, v, stagger(i as u64, pid, q, m));
            }
        }
    });
    // 13. Every processor reads back its output segment.
    qsm.phase(move |pid, _s, _res, ctx| {
        for k in 0..per {
            let gidx = pid * per + k;
            ctx.read_at(c0 + gidx, (gidx as u64) % t_wrap);
        }
    });
    qsm.phase(move |_pid, s, res, _ctx| {
        s.result = res.iter().map(|r| r.value).collect();
    });

    // Verify against the deterministic substrate.
    let expect = crate::columnsort::columnsort(inputs);
    let mut got = Vec::with_capacity(n);
    for st in qsm.states() {
        got.extend_from_slice(&st.result);
    }
    let ok = got == expect;

    let model = QsmM {
        m,
        penalty: PenaltyFn::Exponential,
    };
    if std::env::var("PBW_SORT_DEBUG").is_ok() {
        for (i, prof) in qsm.profiles().iter().enumerate() {
            eprintln!(
                "qsm phase {i}: cost {:.1} w={} h={} kappa={} cm_len={} maxinj={}",
                model.superstep_cost(prof),
                prof.max_work,
                prof.h_qsm(),
                prof.max_contention,
                prof.injections.len(),
                prof.injections.iter().max().unwrap_or(&0)
            );
        }
    }
    let summary = pbw_sim::CostSummary::price(params, qsm.profiles());
    (
        Measured {
            time: model.run_cost(qsm.profiles()),
            rounds: qsm.phase_index(),
            ok,
        },
        summary,
    )
}

/// Message payload of the BSP sort: tagged words.
#[derive(Debug, Clone, Copy)]
enum SortMsg {
    Key(Word),
    Sample(Word),
    Splitter(u32, Word), // (index, value)
    Count(Word),
    Offset(Word),
    Ranked(Word), // key routed to its output processor
}

/// Sample sort on the BSP(m): `O(n/m + L·lg q)` w.h.p.
pub fn bsp_m(params: MachineParams, inputs: &[Word]) -> Measured {
    bsp_m_detailed(params, inputs).0
}

/// As [`bsp_m`], additionally returning the run priced under every model.
pub fn bsp_m_detailed(params: MachineParams, inputs: &[Word]) -> (Measured, pbw_sim::CostSummary) {
    let p = params.p;
    let m = params.m;
    let n = inputs.len();
    assert!(n.is_multiple_of(p));
    let per = n / p;
    let q = bucket_count(p, m, n);
    let ov = oversample(n, m, q);
    let t_wrap = div_ceil(n as u64, m as u64).max(per as u64);

    let mut bsp: BspMachine<St, SortMsg> = BspMachine::new(params, |_| St::default());

    // 1. Round-robin scatter to buckets, wrap-around slots.
    bsp.superstep(move |pid, _s, _in, out| {
        for k in 0..per {
            let gidx = pid * per + k;
            out.send_at(gidx % q, SortMsg::Key(inputs[gidx]), (gidx as u64) % t_wrap);
        }
    });
    // 2. Buckets sort, send samples to processor 0.
    bsp.superstep(move |pid, s, inbox, out| {
        if pid < q {
            s.keys = inbox
                .iter()
                .map(|msg| match msg {
                    SortMsg::Key(v) => *v,
                    _ => unreachable!(),
                })
                .collect();
            s.keys.sort_unstable();
            let len = s.keys.len().max(1) as u64;
            out.charge_work(len * (64 - len.leading_zeros()) as u64);
            let mut rng = sample_rng(pid);
            for t in 0..ov {
                let v = if s.keys.is_empty() {
                    Word::MAX
                } else {
                    s.keys[rng.gen_range(0..s.keys.len())]
                };
                out.send_at(0, SortMsg::Sample(v), stagger(t as u64, pid, q, m));
            }
        }
    });
    // 3a. Processor 0 gathers the samples and selects splitters.
    bsp.superstep(move |pid, s, inbox, _out| {
        if pid == 0 {
            let samples: Vec<Word> = inbox
                .iter()
                .map(|msg| match msg {
                    SortMsg::Sample(v) => *v,
                    _ => unreachable!(),
                })
                .collect();
            s.splitters = select_splitters(samples, q);
        }
    });
    // 3b. Splitter vector flows down a doubling tree over the q buckets:
    // in round r, processors [0, 2^r) that hold the vector send it to
    // pid + 2^r. Storing (from last round's inbox) happens before sending
    // within the same superstep.
    let store_splitters = move |s: &mut St, inbox: &[SortMsg]| {
        if s.splitters.is_empty() && !inbox.is_empty() {
            let mut spl = vec![0 as Word; q - 1];
            for msg in inbox {
                if let SortMsg::Splitter(i, v) = msg {
                    spl[*i as usize] = *v;
                }
            }
            s.splitters = spl;
        }
    };
    let mut known = 1usize;
    while known < q {
        let k = known;
        bsp.superstep(move |pid, s, inbox, out| {
            store_splitters(s, inbox);
            if pid < k && pid + k < q && !s.splitters.is_empty() {
                for (i, &v) in s.splitters.iter().enumerate() {
                    out.send_at(
                        pid + k,
                        SortMsg::Splitter(i as u32, v),
                        stagger(i as u64, pid, k, m),
                    );
                }
            }
        });
        known *= 2;
    }
    // Final store for the last round's receivers.
    bsp.superstep(move |_pid, s, inbox, _out| store_splitters(s, inbox));
    // 4. Buckets redistribute keys by splitter.
    bsp.superstep(move |pid, s, _in, out| {
        if pid < q {
            let mut t = 0usize;
            for (k, &key) in s.keys.iter().enumerate() {
                while t < s.splitters.len() && key > s.splitters[t] {
                    t += 1;
                }
                out.send_at(t, SortMsg::Key(key), stagger(k as u64, pid, q, m));
            }
        }
    });
    // 5. Targets sort their final bucket; send counts to processor 0.
    bsp.superstep(move |pid, s, inbox, out| {
        if pid < q {
            s.result = inbox
                .iter()
                .filter_map(|msg| match msg {
                    SortMsg::Key(v) => Some(*v),
                    _ => None,
                })
                .collect();
            s.result.sort_unstable();
            let len = s.result.len().max(1) as u64;
            out.charge_work(len * (64 - len.leading_zeros()) as u64);
            out.send_at(
                0,
                SortMsg::Count(s.result.len() as Word),
                stagger(0, pid, q, m),
            );
        }
    });
    // 6. Processor 0 prefixes counts, sends each bucket its global offset.
    bsp.superstep(move |pid, _s, inbox, out| {
        if pid == 0 {
            // Counts arrive in source-pid order (engine guarantee).
            let mut off = 0 as Word;
            for (t, msg) in inbox.iter().enumerate() {
                if let SortMsg::Count(c) = msg {
                    out.send_at(t, SortMsg::Offset(off), t as u64);
                    off += c;
                }
            }
        }
    });
    // 7. Buckets route each key to its output processor (rank / per).
    bsp.superstep(move |pid, s, inbox, out| {
        if pid < q {
            let off = inbox
                .iter()
                .find_map(|msg| match msg {
                    SortMsg::Offset(v) => Some(*v as usize),
                    _ => None,
                })
                .unwrap_or(0);
            s.out_offset = off;
            for (i, &key) in s.result.iter().enumerate() {
                let rank = off + i;
                out.send_at(
                    rank / per,
                    SortMsg::Ranked(key),
                    stagger(i as u64, pid, q, m),
                );
            }
        }
    });
    // 8. Output processors sort their segment locally.
    bsp.superstep(move |_pid, s, inbox, out| {
        s.result = inbox
            .iter()
            .filter_map(|msg| match msg {
                SortMsg::Ranked(v) => Some(*v),
                _ => None,
            })
            .collect();
        s.result.sort_unstable();
        let len = s.result.len().max(1) as u64;
        out.charge_work(len * (64 - len.leading_zeros()) as u64);
    });

    let expect = crate::columnsort::columnsort(inputs);
    let mut got = Vec::with_capacity(n);
    for st in bsp.states() {
        got.extend_from_slice(&st.result);
    }
    let ok = got == expect;
    let model = BspM {
        m,
        l: params.l,
        penalty: PenaltyFn::Exponential,
    };
    if std::env::var("PBW_SORT_DEBUG").is_ok() {
        for (i, prof) in bsp.profiles().iter().enumerate() {
            eprintln!(
                "bsp step {i}: cost {:.1} w={} h={} cm_len={} maxinj={}",
                model.superstep_cost(prof),
                prof.max_work,
                prof.h_bsp(),
                prof.injections.len(),
                prof.injections.iter().max().unwrap_or(&0)
            );
        }
    }
    let summary = pbw_sim::CostSummary::price(params, bsp.profiles());
    (
        Measured {
            time: model.run_cost(bsp.profiles()),
            rounds: bsp.superstep_index(),
            ok,
        },
        summary,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn keys(n: usize, seed: u64) -> Vec<Word> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-100_000..100_000)).collect()
    }

    #[test]
    fn qsm_sort_correct_small() {
        let mp = MachineParams::from_gap(32, 4, 4);
        let r = qsm_m(mp, &keys(32 * 8, 1));
        assert!(r.ok);
    }

    #[test]
    fn qsm_sort_correct_larger() {
        let mp = MachineParams::from_gap(128, 16, 4);
        let r = qsm_m(mp, &keys(128 * 32, 2));
        assert!(r.ok);
    }

    #[test]
    fn qsm_sort_duplicates() {
        let mp = MachineParams::from_gap(32, 4, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let xs: Vec<Word> = (0..32 * 8).map(|_| rng.gen_range(0..5)).collect();
        assert!(qsm_m(mp, &xs).ok);
    }

    #[test]
    fn qsm_sort_scales_as_n_over_m() {
        // Θ(n/m): at fixed m, doubling n must roughly double the time (the
        // splitter-selection term is independent of n, so the ratio
        // converges to 2 from below as n grows).
        let mp = MachineParams::from_gap(256, 8, 4);
        let t1 = qsm_m(mp, &keys(256 * 32, 4)).time_checked();
        let t2 = qsm_m(mp, &keys(256 * 64, 4)).time_checked();
        let ratio = t2 / t1;
        assert!(ratio > 1.4 && ratio < 2.6, "ratio {ratio} not ~2");
        // And the absolute constant stays bounded.
        let bound = pbw_models::bounds::sorting_qsm_m(256 * 64, mp.m);
        assert!(t2 <= 40.0 * bound, "time {t2} vs Θ({bound})");
    }

    #[test]
    fn qsm_sort_never_overloads() {
        // If any slot exceeded m, the exponential charge would diverge from
        // the linear one. Price the same run under both.
        let mp = MachineParams::from_gap(64, 8, 4);
        let n = 64 * 16;
        let xs = keys(n, 5);
        // Run once, reading internal profiles via the cost difference:
        let exp = qsm_m(mp, &xs);
        assert!(exp.ok);
        // A gross overload would add e^{k} spikes; n/m here is 128, so any
        // time beyond ~60·n/m would be suspicious (the constant covers the
        // splitter-selection term at this small n).
        assert!(
            exp.time < 60.0 * (n as f64 / mp.m as f64),
            "time {}",
            exp.time
        );
    }

    #[test]
    fn bsp_sort_correct_small() {
        let mp = MachineParams::from_gap(32, 4, 4);
        let r = bsp_m(mp, &keys(32 * 8, 6));
        assert!(r.ok);
    }

    #[test]
    fn bsp_sort_correct_larger() {
        let mp = MachineParams::from_gap(128, 16, 8);
        let r = bsp_m(mp, &keys(128 * 16, 7));
        assert!(r.ok);
    }

    #[test]
    fn bsp_sort_scales_as_n_over_m() {
        let mp = MachineParams::from_gap(256, 8, 4);
        let t1 = bsp_m(mp, &keys(256 * 32, 8)).time_checked();
        let t2 = bsp_m(mp, &keys(256 * 64, 8)).time_checked();
        let ratio = t2 / t1;
        assert!(ratio > 1.4 && ratio < 2.6, "ratio {ratio} not ~2");
        let bound = pbw_models::bounds::sorting_bsp_m(256 * 64, mp.m, mp.l);
        assert!(t2 <= 40.0 * bound, "time {t2} vs Θ({bound})");
    }

    #[test]
    fn sorted_input_stays_sorted() {
        let mp = MachineParams::from_gap(32, 4, 2);
        let xs: Vec<Word> = (0..32 * 4).collect();
        assert!(qsm_m(mp, &xs).ok);
        assert!(bsp_m(mp, &xs).ok);
    }

    #[test]
    fn bucket_count_respects_caps() {
        // √(256/8) ≈ 6 is the binding cap here (m·lg n = 36, p = 1024).
        assert_eq!(bucket_count(1024, 4, 256), 6);
        assert_eq!(bucket_count(8, 64, 1 << 20), 8); // p smallest
        assert!(bucket_count(4096, 64, 4096) <= 23); // √(n/8)
    }

    #[test]
    fn stagger_no_per_proc_collision_and_bounded_load() {
        let (active, m) = (37usize, 8usize);
        use std::collections::HashMap;
        let mut per_proc: HashMap<(usize, u64), u32> = HashMap::new();
        let mut per_slot: HashMap<u64, u32> = HashMap::new();
        for j in 0..active {
            for k in 0..50u64 {
                let s = stagger(k, j, active, m);
                *per_proc.entry((j, s)).or_default() += 1;
                *per_slot.entry(s).or_default() += 1;
            }
        }
        assert!(
            per_proc.values().all(|&c| c == 1),
            "per-processor slot reuse"
        );
        assert!(per_slot.values().all(|&c| c as usize <= m), "slot overload");
    }
}
