//! Leighton's columnsort — the deterministic sorting substrate behind the
//! paper's Table 1 sorting bound (via Adler–Byers–Karp [2], which adapts
//! columnsort to the limited-bandwidth setting).
//!
//! Columnsort sorts an `r × s` matrix (column-major, `s | r`,
//! `r ≥ 2(s−1)²`) into column-major order in eight steps:
//!
//! 1. sort each column,
//! 2. *transpose*: reshape reading column-major / writing row-major,
//! 3. sort each column,
//! 4. *untranspose*: the inverse reshape,
//! 5. sort each column,
//! 6. *shift*: shift the matrix forward by `r/2` positions (a half-column of
//!    `−∞` pads the front, `+∞` the back, giving `s+1` columns),
//! 7. sort each column,
//! 8. *unshift*.
//!
//! Each step is exposed individually (the machine-level sort in
//! [`crate::sort`] prices the permutation steps as communication), and
//! [`columnsort`] runs the whole pipeline on an arbitrary slice, choosing
//! dimensions and padding with sentinels automatically.

use pbw_sim::Word;

/// A column-major `r × s` matrix of words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    /// Rows per column.
    pub r: usize,
    /// Number of columns.
    pub s: usize,
    /// Elements, column-major: entry `(i, j)` at `data[j*r + i]`.
    pub data: Vec<Word>,
}

impl Matrix {
    /// Build from column-major data.
    pub fn new(r: usize, s: usize, data: Vec<Word>) -> Self {
        assert_eq!(data.len(), r * s, "data must fill the matrix");
        Matrix { r, s, data }
    }

    /// Whether the dimensions satisfy Leighton's requirements.
    pub fn dims_valid(&self) -> bool {
        let (r, s) = (self.r, self.s);
        s >= 1 && r % s.max(1) == 0 && (s <= 1 || r >= 2 * (s - 1) * (s - 1))
    }

    /// Step 1/3/5/7: sort every column ascending.
    pub fn sort_columns(&mut self) {
        for j in 0..self.s {
            self.data[j * self.r..(j + 1) * self.r].sort_unstable();
        }
    }

    /// Step 2: reshape reading column-major, writing row-major.
    pub fn transpose(&mut self) {
        let (r, s) = (self.r, self.s);
        let mut out = vec![0; r * s];
        // Element k of the column-major stream goes to row-major position k:
        // row k/s, column k%s → column-major index (k%s)*r + k/s.
        for (k, &v) in self.data.iter().enumerate() {
            out[(k % s) * r + k / s] = v;
        }
        self.data = out;
    }

    /// Step 4: inverse of [`Matrix::transpose`].
    pub fn untranspose(&mut self) {
        let (r, s) = (self.r, self.s);
        let mut out = vec![0; r * s];
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.data[(k % s) * r + k / s];
        }
        self.data = out;
    }

    /// Steps 6–8 fused with the final column sort: shift the column-major
    /// stream forward by `r/2`, sort the `s+1` resulting columns (with `−∞`
    /// and `+∞` sentinels), and unshift.
    pub fn shift_sort_unshift(&mut self) {
        let (r, s) = (self.r, self.s);
        let half = r / 2;
        // Build the (s+1)-column shifted matrix.
        let mut wide = vec![Word::MAX; r * (s + 1)];
        wide[..half].fill(Word::MIN);
        wide[half..half + r * s].copy_from_slice(&self.data);
        let mut m = Matrix::new(r, s + 1, wide);
        m.sort_columns();
        // Unshift: drop the sentinels.
        self.data.copy_from_slice(&m.data[half..half + r * s]);
    }

    /// Run all eight steps.
    pub fn columnsort_in_place(&mut self) {
        assert!(
            self.dims_valid(),
            "columnsort needs s | r and r ≥ 2(s−1)² (r={}, s={})",
            self.r,
            self.s
        );
        self.sort_columns(); // 1
        self.transpose(); // 2
        self.sort_columns(); // 3
        self.untranspose(); // 4
        self.sort_columns(); // 5
        self.shift_sort_unshift(); // 6–8
    }

    /// Whether the matrix is sorted in column-major order.
    pub fn is_sorted(&self) -> bool {
        self.data.windows(2).all(|w| w[0] <= w[1])
    }
}

/// Pick columnsort dimensions for `n` elements: `s ≈ n^{1/3}/2`, `r` the
/// smallest multiple of `s` with `r·s ≥ n` and `r ≥ 2(s−1)²`. Returns
/// `(r, s)`; the caller pads with `Word::MAX` to `r·s`.
pub fn plan_dims(n: usize) -> (usize, usize) {
    assert!(n > 0);
    let mut s = ((n as f64 / 2.0).powf(1.0 / 3.0).floor() as usize).max(1);
    loop {
        let need_rows = n
            .div_ceil(s)
            .max(if s > 1 { 2 * (s - 1) * (s - 1) } else { 1 });
        // Round up to a multiple of s.
        let r = need_rows.div_ceil(s) * s;
        // Keep padding within a constant factor of n; shrink s otherwise.
        if r * s <= 8 * n || s == 1 {
            return (r, s);
        }
        s -= 1;
    }
}

/// Sort an arbitrary slice with columnsort (pads with sentinels, strips them
/// after).
///
/// ```
/// use pbw_algos::columnsort::columnsort;
/// assert_eq!(columnsort(&[5, 3, 9, 1, 4]), vec![1, 3, 4, 5, 9]);
/// ```
pub fn columnsort(xs: &[Word]) -> Vec<Word> {
    if xs.len() <= 1 {
        return xs.to_vec();
    }
    let (r, s) = plan_dims(xs.len());
    let mut data = vec![Word::MAX; r * s];
    data[..xs.len()].copy_from_slice(xs);
    let mut m = Matrix::new(r, s, data);
    m.columnsort_in_place();
    m.data.truncate(xs.len());
    m.data
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_vec(n: usize, seed: u64) -> Vec<Word> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-10_000..10_000)).collect()
    }

    #[test]
    fn transpose_untranspose_roundtrip() {
        let data: Vec<Word> = (0..24).collect();
        let mut m = Matrix::new(6, 4, data.clone());
        m.transpose();
        assert_ne!(m.data, data);
        m.untranspose();
        assert_eq!(m.data, data);
    }

    #[test]
    fn transpose_reshapes_correctly() {
        // 4×2, column-major [0,1,2,3 | 4,5,6,7]. Picking entries up column
        // by column (stream 0..7) and laying them down row by row gives
        // rows (0,1),(2,3),(4,5),(6,7), i.e. column-major
        // [0,2,4,6 | 1,3,5,7].
        let mut m = Matrix::new(4, 2, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        m.transpose();
        assert_eq!(m.data, vec![0, 2, 4, 6, 1, 3, 5, 7]);
    }

    #[test]
    fn columnsort_exact_matrix() {
        // r = 8, s = 2: r ≥ 2(s−1)² = 2, s | r. 16 values.
        let vals = random_vec(16, 1);
        let mut m = Matrix::new(8, 2, vals.clone());
        m.columnsort_in_place();
        let mut expect = vals;
        expect.sort_unstable();
        assert_eq!(m.data, expect);
        assert!(m.is_sorted());
    }

    #[test]
    fn columnsort_three_columns() {
        // s = 3 needs r ≥ 8; use r = 9 (s | r).
        let vals = random_vec(27, 2);
        let mut m = Matrix::new(9, 3, vals.clone());
        m.columnsort_in_place();
        let mut expect = vals;
        expect.sort_unstable();
        assert_eq!(m.data, expect);
    }

    #[test]
    #[should_panic(expected = "columnsort needs")]
    fn rejects_invalid_dims() {
        // s = 4 with r = 8 violates r ≥ 2·9 = 18.
        let mut m = Matrix::new(8, 4, vec![0; 32]);
        m.columnsort_in_place();
    }

    #[test]
    fn plan_dims_satisfies_constraints() {
        for n in [1usize, 2, 5, 17, 100, 1000, 12345, 100_000] {
            let (r, s) = plan_dims(n);
            assert!(r * s >= n, "n={n}");
            assert!(r % s == 0, "n={n}: s∤r ({r},{s})");
            if s > 1 {
                assert!(r >= 2 * (s - 1) * (s - 1), "n={n}: r too small ({r},{s})");
            }
            assert!(r * s <= 8 * n.max(2), "n={n}: padding blow-up ({r},{s})");
        }
    }

    #[test]
    fn columnsort_arbitrary_sizes() {
        for n in [1usize, 2, 3, 10, 63, 64, 65, 500, 4097] {
            let vals = random_vec(n, n as u64);
            let got = columnsort(&vals);
            let mut expect = vals;
            expect.sort_unstable();
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn columnsort_with_duplicates() {
        let vals: Vec<Word> = (0..200).map(|i| (i % 7) as Word).collect();
        let got = columnsort(&vals);
        let mut expect = vals;
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn columnsort_already_sorted_and_reversed() {
        let sorted: Vec<Word> = (0..128).collect();
        assert_eq!(columnsort(&sorted), sorted);
        let reversed: Vec<Word> = (0..128).rev().collect();
        assert_eq!(columnsort(&reversed), sorted);
    }

    #[test]
    fn columnsort_extremes() {
        let vals = vec![Word::MAX, Word::MIN, 0, Word::MAX, Word::MIN];
        let got = columnsort(&vals);
        assert_eq!(got, vec![Word::MIN, Word::MIN, 0, Word::MAX, Word::MAX]);
    }
}
