//! # pbw-trace
//!
//! Superstep cost-trace observability for the parallel-bandwidth workspace.
//!
//! Every bound in the paper is a statement about *per-superstep* model costs
//! (`max(w, g·h, L)` vs `max(w, h, c_m, L)`), but an engine run normally
//! reports only totals. This crate defines one structured [`TraceEvent`] per
//! superstep — the exact [`SuperstepProfile`], per-processor traffic, the
//! [`Breakdown`] naming which term bound the step under each model family,
//! per-slot penalty contributions, and the superstep's price under every
//! model — plus a pluggable [`TraceSink`] the engines emit into.
//!
//! Three sinks are provided:
//!
//! * [`NullSink`] — the default. [`TraceSink::enabled`] returns `false`, so
//!   instrumented engines skip event construction entirely: tracing is
//!   zero-cost when off (verified by the A/B benchmark in `crates/bench`).
//! * [`RecordingSink`] — collects events in memory; what the conformance and
//!   property tests read back.
//! * [`JsonlSink`] — streams one JSON object per event to a file; wired into
//!   the `reproduce` binary behind `--trace <path>`.
//!
//! Engines capture the *global default sink* ([`global_sink`]) when they are
//! constructed, so `reproduce --trace` needs no plumbing through experiment
//! code; tests inject sinks explicitly (`set_sink` on the engines) to stay
//! isolated from the global.

use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use pbw_models::breakdown::{Breakdown, Dominant};
use pbw_models::{CostSummary, MachineParams, PenaltyFn, SuperstepProfile};

/// Which engine (or pipeline stage) emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSource {
    /// The message-passing superstep engine (`pbw-sim`).
    Bsp,
    /// The shared-memory phase engine (`pbw-sim`).
    Qsm,
    /// The PRAM-family simulator (`pbw-pram`).
    Pram,
    /// A scheduler's slot assignment audited offline (`pbw-core`).
    Schedule,
    /// The dynamic router of Section 6.2 (`pbw-adversary`).
    Router,
}

impl TraceSource {
    /// Stable lowercase name used in the JSON-lines output.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceSource::Bsp => "bsp",
            TraceSource::Qsm => "qsm",
            TraceSource::Pram => "pram",
            TraceSource::Schedule => "schedule",
            TraceSource::Router => "router",
        }
    }
}

impl std::fmt::Display for TraceSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-superstep fault-injection counters, stamped on events emitted by an
/// engine with a delivery hook attached (see `pbw-sim::hook`). `None` on the
/// event means the run was a reliable network — the schema distinguishes "no
/// faults occurred" (all-zero counters) from "faults were impossible".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct FaultCounters {
    /// Messages the network lost this superstep.
    pub dropped: u64,
    /// Spurious copies created this superstep (they arrive next superstep).
    pub duplicated: u64,
    /// Messages diverted into the delay queue this superstep.
    pub delayed: u64,
    /// Messages whose injection slot the router displaced.
    pub displaced: u64,
    /// Processors stalled for the whole superstep.
    pub stalled_procs: u64,
    /// Previously delayed/duplicated payloads that arrived at this boundary.
    pub late_arrivals: u64,
    /// Payloads destroyed this superstep because their destination was
    /// crash-stopped when custody would have transferred.
    pub crashed: u64,
    /// Processors crash-stopped for the whole superstep.
    pub crashed_procs: u64,
    /// Retransmission round this superstep belongs to (0 = original send;
    /// stamped by the recovery protocol in `pbw-core`, not the engines).
    pub retransmit_round: u32,
}

impl FaultCounters {
    /// Whether every counter is zero (the event would be indistinguishable
    /// from a fault-free superstep apart from the hook being attached).
    pub fn is_zero(&self) -> bool {
        *self == FaultCounters::default()
    }
}

/// A checkpoint/rollback annotation stamped on the superstep event at which
/// the recovery driver acted. Absent on ordinary supersteps; the JSON-lines
/// schema renders it as a `"recovery"` object so soak-harness diffs see
/// recovery decisions, not just their cost side effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum RecoveryMark {
    /// A superstep-consistent snapshot was committed at this boundary.
    Checkpoint {
        /// Total payloads captured in the snapshot (inboxes + pending
        /// network) — the state volume the checkpoint h-relation moved.
        payloads: u64,
    },
    /// The machine was rolled back to the snapshot taken at `to` before
    /// this superstep ran.
    Rollback {
        /// Superstep index the machine rewound from.
        from: u64,
        /// Superstep index of the restored snapshot.
        to: u64,
    },
}

/// One structured record per superstep (or QSM phase, PRAM step, router
/// batch): everything needed to re-derive the step's price under every model.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TraceEvent {
    /// Emitting engine.
    pub source: TraceSource,
    /// Free-form label (experiment id, scheduler name, …); empty if unset.
    pub label: String,
    /// 0-based superstep / phase / batch index within the run.
    pub superstep: u64,
    /// Machine configuration the step was priced under.
    pub params: MachineParams,
    /// The exact profile the engine recorded for this step.
    pub profile: SuperstepProfile,
    /// Messages sent by each processor this step (empty when the emitter
    /// only knows aggregates, e.g. offline schedule audits).
    pub per_proc_sent: Vec<u64>,
    /// Messages received by each processor this step.
    pub per_proc_recv: Vec<u64>,
    /// Largest number of injections any single processor charged to one
    /// slot — the BSP(m) pipelining rule requires this to be ≤ 1.
    pub max_proc_slot_injections: u64,
    /// Messages actually delivered at the superstep boundary.
    pub delivered: u64,
    /// All cost terms of this step under both model families.
    pub breakdown: Breakdown,
    /// Which term bound the step under BSP(g).
    pub dominant_bsp_g: Dominant,
    /// Which term bound the step under BSP(m) with the exponential penalty.
    pub dominant_bsp_m: Dominant,
    /// This single step priced under every model of the paper.
    pub costs: CostSummary,
    /// Per-slot exponential penalty charges `f_m(m_t)`, one per step `t` of
    /// the superstep (so `Σ slot_penalties = c_m`).
    pub slot_penalties: Vec<f64>,
    /// Fault-injection counters; `None` when the emitting engine ran without
    /// a delivery hook (reliable network).
    pub faults: Option<FaultCounters>,
    /// Checkpoint/rollback annotation; `None` on ordinary supersteps.
    pub recovery: Option<RecoveryMark>,
}

impl TraceEvent {
    /// Build the full event for one recorded superstep: prices the profile
    /// under every model, computes the term breakdown and the per-slot
    /// penalty contributions.
    #[allow(clippy::too_many_arguments)]
    pub fn for_superstep(
        source: TraceSource,
        label: impl Into<String>,
        superstep: u64,
        params: MachineParams,
        profile: SuperstepProfile,
        per_proc_sent: Vec<u64>,
        per_proc_recv: Vec<u64>,
        max_proc_slot_injections: u64,
        delivered: u64,
    ) -> Self {
        let breakdown = Breakdown::of(params, &profile);
        let costs = CostSummary::price(params, std::slice::from_ref(&profile));
        let penalty_table = PenaltyFn::Exponential.table(params.m);
        let slot_penalties = profile
            .injections
            .iter()
            .map(|&m_t| penalty_table.charge(m_t))
            .collect();
        TraceEvent {
            source,
            label: label.into(),
            superstep,
            params,
            profile,
            per_proc_sent,
            per_proc_recv,
            max_proc_slot_injections,
            delivered,
            dominant_bsp_g: breakdown.dominant_bsp_g(),
            dominant_bsp_m: breakdown.dominant_bsp_m(),
            breakdown,
            costs,
            slot_penalties,
            faults: None,
            recovery: None,
        }
    }

    /// Stamp fault counters on the event (builder-style, used by engines
    /// running with a delivery hook).
    pub fn with_faults(mut self, faults: FaultCounters) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Stamp a checkpoint/rollback annotation on the event (builder-style,
    /// used by engines driven under a recovery protocol).
    pub fn with_recovery(mut self, mark: RecoveryMark) -> Self {
        self.recovery = Some(mark);
        self
    }

    /// Render the event as one line of JSON (no trailing newline).
    ///
    /// Hand-written rather than driven by serde: the offline `serde` shim
    /// (see `crates/shims/README.md`) only provides no-op derives, and the
    /// schema here is small and flat enough that explicit rendering doubles
    /// as its documentation (mirrored in `crates/trace/README.md`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        push_str_field(&mut s, "source", self.source.as_str());
        s.push(',');
        push_str_field(&mut s, "label", &self.label);
        s.push_str(&format!(",\"superstep\":{}", self.superstep));
        s.push_str(&format!(
            ",\"params\":{{\"p\":{},\"g\":{},\"m\":{},\"l\":{}}}",
            self.params.p, self.params.g, self.params.m, self.params.l
        ));
        let p = &self.profile;
        s.push_str(&format!(
            ",\"profile\":{{\"max_work\":{},\"max_sent\":{},\"max_received\":{},\
             \"total_messages\":{},\"injections\":{},\"max_reads\":{},\
             \"max_writes\":{},\"max_contention\":{}}}",
            p.max_work,
            p.max_sent,
            p.max_received,
            p.total_messages,
            json_u64_array(&p.injections),
            p.max_reads,
            p.max_writes,
            p.max_contention
        ));
        s.push_str(",\"per_proc_sent\":");
        s.push_str(&json_u64_array(&self.per_proc_sent));
        s.push_str(",\"per_proc_recv\":");
        s.push_str(&json_u64_array(&self.per_proc_recv));
        s.push_str(&format!(
            ",\"max_proc_slot_injections\":{},\"delivered\":{}",
            self.max_proc_slot_injections, self.delivered
        ));
        let b = &self.breakdown;
        s.push_str(&format!(
            ",\"breakdown\":{{\"work\":{},\"local_traffic\":{},\"global_traffic\":{},\
             \"bandwidth\":{},\"ss_bandwidth\":{},\"contention\":{},\"latency\":{}}}",
            json_f64(b.work),
            json_f64(b.local_traffic),
            json_f64(b.global_traffic),
            json_f64(b.bandwidth),
            json_f64(b.ss_bandwidth),
            json_f64(b.contention),
            json_f64(b.latency)
        ));
        s.push_str(&format!(
            ",\"dominant\":{{\"bsp_g\":\"{}\",\"bsp_m\":\"{}\"}}",
            self.dominant_bsp_g, self.dominant_bsp_m
        ));
        let c = &self.costs;
        s.push_str(&format!(
            ",\"costs\":{{\"bsp_g\":{},\"bsp_m_linear\":{},\"bsp_m_exp\":{},\
             \"bsp_m_self\":{},\"qsm_g\":{},\"qsm_m_linear\":{},\"qsm_m_exp\":{}}}",
            json_f64(c.bsp_g),
            json_f64(c.bsp_m_linear),
            json_f64(c.bsp_m_exp),
            json_f64(c.bsp_m_self),
            json_f64(c.qsm_g),
            json_f64(c.qsm_m_linear),
            json_f64(c.qsm_m_exp)
        ));
        s.push_str(",\"slot_penalties\":[");
        for (i, v) in self.slot_penalties.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_f64(*v));
        }
        s.push(']');
        if let Some(fc) = &self.faults {
            s.push_str(&format!(
                ",\"faults\":{{\"dropped\":{},\"duplicated\":{},\"delayed\":{},\
                 \"displaced\":{},\"stalled_procs\":{},\"late_arrivals\":{},\
                 \"crashed\":{},\"crashed_procs\":{},\"retransmit_round\":{}}}",
                fc.dropped,
                fc.duplicated,
                fc.delayed,
                fc.displaced,
                fc.stalled_procs,
                fc.late_arrivals,
                fc.crashed,
                fc.crashed_procs,
                fc.retransmit_round
            ));
        }
        match &self.recovery {
            Some(RecoveryMark::Checkpoint { payloads }) => {
                s.push_str(&format!(
                    ",\"recovery\":{{\"kind\":\"checkpoint\",\"payloads\":{payloads}}}"
                ));
            }
            Some(RecoveryMark::Rollback { from, to }) => {
                s.push_str(&format!(
                    ",\"recovery\":{{\"kind\":\"rollback\",\"from\":{from},\"to\":{to}}}"
                ));
            }
            None => {}
        }
        s.push('}');
        s
    }
}

fn push_str_field(s: &mut String, key: &str, value: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":\"");
    for ch in value.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

fn json_u64_array(xs: &[u64]) -> String {
    let mut s = String::with_capacity(xs.len() * 4 + 2);
    s.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&x.to_string());
    }
    s.push(']');
    s
}

/// JSON has no Infinity/NaN literal; saturated penalties render as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Lock a sink mutex, recovering from poisoning. Trace data is append-only
/// metadata: a thread that panicked mid-`record` left at worst one garbled
/// event, which must not cascade assertion failures into unrelated traced
/// tests sharing the process-wide sink.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Where trace events go. Implementations must be shareable across the
/// engines' rayon workers, hence `Send + Sync`; `record` takes `&self` so a
/// sink behind an `Arc` needs interior mutability.
pub trait TraceSink: Send + Sync {
    /// Whether emitters should construct events at all. Engines check this
    /// once per superstep and skip every per-event allocation when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Accept one event.
    fn record(&self, event: TraceEvent);
}

/// The default sink: tracing off. [`TraceSink::enabled`] is `false`, so
/// instrumented hot paths never reach [`TraceSink::record`].
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}
}

/// In-memory sink for tests and the breakdown APIs.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl RecordingSink {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clone of everything recorded so far, in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        lock_unpoisoned(&self.events).clone()
    }

    /// Drain everything recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *lock_unpoisoned(&self.events))
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.events).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RecordingSink {
    fn record(&self, event: TraceEvent) {
        lock_unpoisoned(&self.events).push(event);
    }
}

/// Streams one JSON object per event to a writer, newline-delimited.
pub struct JsonlSink {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(file)))
    }

    /// Stream events into an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            writer: Mutex::new(BufWriter::new(writer)),
        }
    }

    /// Flush buffered lines to the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        lock_unpoisoned(&self.writer).flush()
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: TraceEvent) {
        let mut w = lock_unpoisoned(&self.writer);
        // Trace output is best-effort: a full disk should not abort the
        // experiment being traced.
        let _ = writeln!(w, "{}", event.to_json());
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = lock_unpoisoned(&self.writer).flush();
    }
}

static GLOBAL_SINK: Mutex<Option<Arc<dyn TraceSink>>> = Mutex::new(None);

fn null_sink() -> Arc<dyn TraceSink> {
    static NULL: OnceLock<Arc<NullSink>> = OnceLock::new();
    let null: Arc<dyn TraceSink> = NULL.get_or_init(|| Arc::new(NullSink)).clone();
    null
}

/// Install `sink` as the process-wide default that engines capture at
/// construction time. Returns the previously installed sink, if any.
pub fn set_global_sink(sink: Arc<dyn TraceSink>) -> Option<Arc<dyn TraceSink>> {
    lock_unpoisoned(&GLOBAL_SINK).replace(sink)
}

/// Reset the process-wide default back to [`NullSink`].
pub fn clear_global_sink() -> Option<Arc<dyn TraceSink>> {
    lock_unpoisoned(&GLOBAL_SINK).take()
}

/// The current process-wide default sink ([`NullSink`] unless
/// [`set_global_sink`] was called). Engines call this once in their
/// constructors; per-superstep paths only touch the captured `Arc`.
pub fn global_sink() -> Arc<dyn TraceSink> {
    lock_unpoisoned(&GLOBAL_SINK)
        .clone()
        .unwrap_or_else(null_sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbw_models::ProfileBuilder;

    fn sample_event(label: &str) -> TraceEvent {
        let params = MachineParams::from_gap(64, 8, 16);
        let mut b = ProfileBuilder::new();
        b.record_work(5).record_traffic(3, 2);
        b.record_injection(0)
            .record_injection(0)
            .record_injection(2);
        TraceEvent::for_superstep(
            TraceSource::Bsp,
            label,
            7,
            params,
            b.build(),
            vec![3, 0],
            vec![1, 2],
            1,
            3,
        )
    }

    #[test]
    fn for_superstep_prices_and_decomposes() {
        let ev = sample_event("unit");
        // g·h = 8·3 = 24; c_m = 3 occupied-slot charges (all m_t ≤ m).
        assert_eq!(ev.breakdown.local_traffic, 24.0);
        assert_eq!(ev.slot_penalties, vec![1.0, 0.0, 1.0]);
        let c_m: f64 = ev.slot_penalties.iter().sum();
        assert_eq!(ev.breakdown.bandwidth, c_m);
        // Single-step pricing matches CostSummary on the same profile.
        let direct = CostSummary::price(ev.params, std::slice::from_ref(&ev.profile));
        assert_eq!(ev.costs, direct);
        assert_eq!(ev.dominant_bsp_g, Dominant::Traffic);
        // BSP(m): max(w=5, h=3, c_m=2, L=16) → L binds.
        assert_eq!(ev.dominant_bsp_m, Dominant::Latency);
    }

    #[test]
    fn json_line_is_well_formed() {
        let ev = sample_event("quote\"me");
        let line = ev.to_json();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert!(line.contains("\"source\":\"bsp\""));
        assert!(line.contains("\"label\":\"quote\\\"me\""));
        assert!(line.contains("\"injections\":[2,0,1]"));
        assert!(line.contains("\"dominant\":{\"bsp_g\":\"h\",\"bsp_m\":\"L\"}"));
        // Balanced braces and brackets (no nested strings with braces here
        // beyond the escaped label, which contains none).
        let opens = line.matches('{').count();
        let closes = line.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn saturated_penalty_renders_null() {
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn recording_sink_accumulates_in_order() {
        let sink = RecordingSink::new();
        assert!(sink.is_empty());
        sink.record(sample_event("a"));
        sink.record(sample_event("b"));
        assert_eq!(sink.len(), 2);
        let events = sink.take();
        assert_eq!(events[0].label, "a");
        assert_eq!(events[1].label, "b");
        assert!(sink.is_empty());
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        let sink = RecordingSink::new();
        assert!(sink.enabled());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        // A writer that counts newlines through a shared handle.
        struct CountingWriter(Arc<AtomicUsize>);
        impl Write for CountingWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.fetch_add(
                    buf.iter().filter(|&&b| b == b'\n').count(),
                    Ordering::SeqCst,
                );
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let lines = Arc::new(AtomicUsize::new(0));
        let sink = JsonlSink::new(Box::new(CountingWriter(lines.clone())));
        sink.record(sample_event("x"));
        sink.record(sample_event("y"));
        sink.flush().unwrap();
        assert_eq!(lines.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn fault_counters_render_only_when_present() {
        let plain = sample_event("plain");
        assert!(!plain.to_json().contains("\"faults\""));
        let faulty = sample_event("faulty").with_faults(FaultCounters {
            dropped: 2,
            late_arrivals: 1,
            retransmit_round: 3,
            ..Default::default()
        });
        let line = faulty.to_json();
        assert!(line.contains(
            "\"faults\":{\"dropped\":2,\"duplicated\":0,\"delayed\":0,\"displaced\":0,\
             \"stalled_procs\":0,\"late_arrivals\":1,\"crashed\":0,\"crashed_procs\":0,\
             \"retransmit_round\":3}"
        ));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn recovery_marks_render_only_when_present() {
        let plain = sample_event("plain");
        assert!(!plain.to_json().contains("\"recovery\""));
        let ck = sample_event("ck").with_recovery(RecoveryMark::Checkpoint { payloads: 12 });
        assert!(ck
            .to_json()
            .contains("\"recovery\":{\"kind\":\"checkpoint\",\"payloads\":12}"));
        let rb = sample_event("rb").with_recovery(RecoveryMark::Rollback { from: 9, to: 6 });
        let line = rb.to_json();
        assert!(line.contains("\"recovery\":{\"kind\":\"rollback\",\"from\":9,\"to\":6}"));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn zero_counters_are_distinguishable_from_no_hook() {
        assert!(FaultCounters::default().is_zero());
        let ev = sample_event("hooked").with_faults(FaultCounters::default());
        assert_eq!(ev.faults, Some(FaultCounters::default()));
        assert!(ev.to_json().contains("\"faults\":{\"dropped\":0"));
    }

    #[test]
    fn recording_sink_survives_a_poisoning_panic() {
        let sink = Arc::new(RecordingSink::new());
        sink.record(sample_event("before"));
        // Poison the mutex: panic while holding the lock on another thread.
        let poisoner = sink.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.events.lock().unwrap();
            panic!("poison the recording sink");
        })
        .join();
        // Every accessor must keep working on the poisoned lock.
        sink.record(sample_event("after"));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.snapshot().len(), 2);
        let events = sink.take();
        assert_eq!(events[0].label, "before");
        assert_eq!(events[1].label, "after");
    }

    #[test]
    fn global_sink_defaults_to_null_and_round_trips() {
        // Serialize against other tests touching the global: this test is
        // the only one in this crate that does.
        let before = clear_global_sink();
        assert!(!global_sink().enabled());
        let rec = Arc::new(RecordingSink::new());
        set_global_sink(rec.clone());
        assert!(global_sink().enabled());
        global_sink().record(sample_event("via-global"));
        assert_eq!(rec.len(), 1);
        clear_global_sink();
        assert!(!global_sink().enabled());
        if let Some(prev) = before {
            set_global_sink(prev);
        }
    }
}
