//! # pbw-pram
//!
//! A PRAM-family simulator used as the proof substrate of Sections 4.1 and 5
//! of the SPAA'97 paper *"Modeling Parallel Bandwidth: Local vs. Global
//! Restrictions"*.
//!
//! * [`machine::Pram`] — a step-synchronous PRAM with selectable access mode
//!   ([`machine::AccessMode`]: EREW / CREW / QRQW / Arbitrary-CRCW), exact
//!   enforcement of read/write exclusivity, deterministic Arbitrary write
//!   resolution, and time/work accounting.
//! * [`machine::Pram::with_rom`] — the PRAM(m) configuration of Mansour,
//!   Nisan and Vishkin: `m` read/write shared cells plus a concurrently
//!   readable Read-Only Memory holding the input (input distribution is free
//!   of the bandwidth limit; this is exactly the feature Section 5 examines).
//! * [`primitives`] — the constant-time and near-constant-time CRCW
//!   primitives the paper leans on: broadcast, O(1) maximum, leftmost-nonzero
//!   per row, prefix sums.
//! * [`hrelation`] — the Section 4.1 h-relation realization algorithms on
//!   the CRCW PRAM (`O(h)` time), which power the paper's conversion of CRCW
//!   lower bounds into BSP(g)/QSM(g) lower bounds.
//! * [`hrelation_rand`] — the randomized `O(h + lg* p)` realization used
//!   for converting randomized lower bounds (approximate sorting and
//!   nearest-one machinery at charged fidelity, the `O(h)` scan for real).

pub mod hrelation;
pub mod hrelation_rand;
pub mod machine;
pub mod primitives;

pub use machine::{AccessMode, Pram, PramCtx, PramError, StepReport};

/// Shared-memory word (matches `pbw_sim::Word`).
pub type Word = i64;
