//! The randomized `O(h + lg* p)` h-relation realization (Section 4.1).
//!
//! For converting *randomized* CRCW lower bounds, the paper routes an
//! h-relation in `O(h + lg* p)` time and linear work w.h.p.:
//!
//! 1. place the elements in an `O(h·n)` array **approximately sorted** by
//!    destination — the Goodrich–Matias–Vishkin approximate integer
//!    sorting [27] runs in `O(lg*(nh))` time and `O(nh)` work;
//! 2. link each element to its nearest right neighbour with the
//!    Berkman–Vishkin *nearest-one* structure [11] — `O(α(nh))` time;
//! 3. identify each destination's sub-list head and notify the
//!    destination — `O(lg*(nh))` time;
//! 4. every destination scans its sub-list in `O(h)` time.
//!
//! Steps 1–3 are deep randomized PRAM machinery whose faithful execution
//! is out of scope (their innards are not what the paper measures); they
//! are implemented at **charged fidelity** — the result is computed
//! directly and the published cost is charged, like the charged mode of
//! [`crate::primitives`]. Step 4, the `O(h)` payload, runs for real on the
//! engine. The total therefore measures as `O(h + lg* n)`, the quantity
//! the conversion needs (the tests check both the `h` scaling and the
//! near-constant additive term).

use crate::hrelation::{HrelationOutcome, Message};
use crate::machine::{AccessMode, Pram};
use crate::Word;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// `lg* x` (iterated base-2 logarithm).
pub fn log_star(mut x: f64) -> u64 {
    let mut k = 0;
    while x > 1.0 {
        x = x.log2();
        k += 1;
        if k > 8 {
            break; // lg* of anything physical is ≤ 5
        }
    }
    k
}

/// Realize an h-relation with the randomized construction. `seed` drives
/// the approximate sort's randomness (here: the random scatter into the
/// padded array, which the charged sort then orders).
pub fn realize_randomized(sends: &[Vec<(usize, Word)>], seed: u64) -> HrelationOutcome {
    let p = sends.len();
    assert!(p > 0);
    let mut msgs: Vec<Message> = Vec::new();
    let mut recv_counts = vec![0u64; p];
    let mut xbar = 0u64;
    for (src, list) in sends.iter().enumerate() {
        xbar = xbar.max(list.len() as u64);
        for &(dest, tag) in list {
            assert!(dest < p, "destination out of range");
            recv_counts[dest] += 1;
            msgs.push(Message { src, dest, tag });
        }
    }
    let ybar = recv_counts.iter().copied().max().unwrap_or(0);
    let h = xbar.max(ybar);
    let n = msgs.len();
    if n == 0 {
        return HrelationOutcome {
            received: vec![Vec::new(); p],
            time: 0,
            work: 0,
            h,
        };
    }

    // Padded array of size O(h·n): elements land at random positions that
    // the approximate sort orders by destination (charged).
    let padded = (2 * n * (h as usize).max(1)).max(4 * n);
    let base_arr = 0; // padded cells: msgid+1 or 0
    let base_next = padded; // nearest-right links (index+1, 0 = none)
    let base_first = 2 * padded; // p cells: head position +1 per destination
    let base_recv = base_first + p; // p × n receive area
    let base_cursor = base_recv + p * n;
    let total = base_cursor + p;
    let mut pram = Pram::new(AccessMode::CrcwArbitrary, total);

    // Step 1 (charged): approximate integer sort by destination — elements
    // appear in the padded array ordered by destination with random gaps.
    // Cost (GMV [27]): O(lg*(nh)) time, O(nh) work w.h.p.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&id| msgs[id].dest);
    {
        // Scatter with random gaps while preserving destination order: walk
        // the padded array, flipping a coin to leave gaps (the "approximate"
        // in approximate sorting: position is only ordered, not compact).
        let mut pos = 0usize;
        let slack = padded - n;
        let mut gaps_left = slack;
        for &id in &order {
            while gaps_left > 0 && rng.gen_bool((gaps_left as f64 / padded as f64).min(0.5)) {
                pos += 1;
                gaps_left -= 1;
            }
            pram.mem_mut()[base_arr + pos] = (id + 1) as Word;
            pos += 1;
        }
        let lg_star = log_star((n as f64) * (h as f64).max(1.0));
        pram.charge_time(lg_star.max(1));
        pram.charge_work((n as u64) * h.max(1));
    }

    // Step 2 (charged): nearest-right links via Berkman–Vishkin [11]:
    // O(α(nh)) ≈ O(1) time, O(nh) work.
    {
        let mut next_occupied = 0 as Word; // 0 = none
        for i in (0..padded).rev() {
            pram.mem_mut()[base_next + i] = next_occupied;
            if pram.mem()[base_arr + i] != 0 {
                next_occupied = (i + 1) as Word;
            }
        }
        pram.charge_time(2);
        pram.charge_work((n as u64) * h.max(1));
    }

    // Step 3 (charged sub-list head identification + real notification):
    // heads are the first element of each destination run.
    {
        let lg_star = log_star(n as f64 * h.max(1) as f64);
        pram.charge_time(lg_star.max(1));
        pram.charge_work(n as u64);
        // Real step: each head element writes its position to its
        // destination's head cell (one CRCW step over n virtual procs).
        let msgs_ref = &msgs;
        let mem_snapshot: Vec<Word> = (0..padded).map(|i| pram.mem()[base_arr + i]).collect();
        // Positions of elements, for the closure to find "previous element".
        let mut positions: Vec<usize> = Vec::with_capacity(n);
        for (i, &v) in mem_snapshot.iter().enumerate() {
            if v != 0 {
                positions.push(i);
            }
        }
        let positions = positions; // k-th occupied slot
        pram.step(n, move |idx, ctx| {
            let pos = positions[idx];
            let id = (ctx.read(base_arr + pos) - 1) as usize;
            let dest = msgs_ref[id].dest;
            let is_head = if idx == 0 {
                true
            } else {
                let prev_pos = positions[idx - 1];
                let prev_id = (ctx.read(base_arr + prev_pos) - 1) as usize;
                msgs_ref[prev_id].dest != dest
            };
            if is_head {
                ctx.write(base_first + dest, (pos + 1) as Word);
            }
        });
    }

    // Step 4 (real): each destination scans its sub-list via the links.
    let mut rounds = 0u64;
    loop {
        let msgs_ref = &msgs;
        let report = pram.step(p, move |pid, ctx| {
            let head = ctx.read(base_first + pid);
            if head == 0 {
                return;
            }
            let pos = (head - 1) as usize;
            let id_plus = ctx.read(base_arr + pos);
            if id_plus == 0 {
                return;
            }
            let id = (id_plus - 1) as usize;
            if msgs_ref[id].dest != pid {
                // End of this destination's run.
                ctx.write(base_first + pid, 0);
                return;
            }
            let cursor = ctx.read(base_cursor + pid);
            ctx.write(
                base_recv + pid * (msgs_ref.len()) + cursor as usize,
                id_plus,
            );
            ctx.write(base_cursor + pid, cursor + 1);
            // Advance to the nearest right element (or stop).
            let nxt = ctx.read(base_next + pos);
            ctx.write(base_first + pid, nxt);
        });
        let _ = report;
        rounds += 1;
        let any_active = (0..p).any(|i| pram.mem()[base_first + i] != 0);
        if !any_active {
            break;
        }
        assert!(rounds <= n as u64 + 2, "scan failed to terminate");
    }

    let received: Vec<Vec<Message>> = (0..p)
        .map(|i| {
            let cnt = pram.mem()[base_cursor + i] as usize;
            (0..cnt)
                .map(|k| {
                    let id_plus = pram.mem()[base_recv + i * n + k];
                    msgs[(id_plus - 1) as usize]
                })
                .collect()
        })
        .collect();
    HrelationOutcome {
        received,
        time: pram.time(),
        work: pram.work(),
        h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hrelation::check_delivery;

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
        assert_eq!(log_star(1e30), 5);
    }

    #[test]
    fn randomized_delivers_simple() {
        let sends = vec![
            vec![(1, 10), (2, 11), (1, 12)],
            vec![(0, 20)],
            vec![(0, 30), (3, 31)],
            vec![],
        ];
        let out = realize_randomized(&sends, 1);
        assert!(check_delivery(&sends, &out));
    }

    #[test]
    fn randomized_delivers_hotspot() {
        let p = 8;
        let sends: Vec<Vec<(usize, Word)>> = (0..p)
            .map(|s| if s == 0 { vec![] } else { vec![(0, s as Word)] })
            .collect();
        let out = realize_randomized(&sends, 2);
        assert!(check_delivery(&sends, &out));
        assert_eq!(out.received[0].len(), p - 1);
    }

    #[test]
    fn randomized_delivers_across_seeds() {
        let sends = vec![vec![(2, 1), (2, 2)], vec![(2, 3), (0, 4)], vec![(1, 5)]];
        for seed in 0..16 {
            let out = realize_randomized(&sends, seed);
            assert!(check_delivery(&sends, &out), "seed={seed}");
        }
    }

    #[test]
    fn time_is_h_plus_small_additive() {
        let p = 8;
        let mk = |h: usize| -> Vec<Vec<(usize, Word)>> {
            (0..p)
                .map(|src| (0..h).map(|k| (((src + 1) % p), k as Word)).collect())
                .collect()
        };
        let t4 = realize_randomized(&mk(4), 3).time;
        let t16 = realize_randomized(&mk(16), 3).time;
        // O(h + lg*): quadrupling h should roughly quadruple the h part.
        assert!(t16 > 2 * t4 / 2, "t4={t4} t16={t16}");
        assert!(t16 <= 6 * t4, "t4={t4} t16={t16}: not linear in h");
    }

    #[test]
    fn empty_relation() {
        let out = realize_randomized(&vec![vec![]; 4], 0);
        assert_eq!(out.time, 0);
    }

    #[test]
    fn scan_order_is_destination_sorted() {
        // Delivery per destination follows the (approximately sorted)
        // array order, which groups by destination.
        let sends = vec![vec![(1, 9), (1, 8), (1, 7)], vec![]];
        let out = realize_randomized(&sends, 5);
        assert_eq!(out.received[1].len(), 3);
        assert!(check_delivery(&sends, &out));
    }
}
