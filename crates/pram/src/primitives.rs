//! CRCW / EREW building blocks used by the Section 4.1 algorithms.
//!
//! Each primitive documents its time/work cost and the access mode it
//! needs. Two execution fidelities are offered where the faithful
//! implementation needs polynomially many virtual processors:
//!
//! * **Faithful** — every virtual processor of the textbook algorithm is
//!   actually executed (e.g. the `n²`-processor constant-time maximum), so
//!   the engine's contention audit and accounting see the real thing.
//! * **Charged** — the result is computed directly and the textbook cost is
//!   charged via [`Pram::charge_time`]/[`Pram::charge_work`]. Used for large
//!   instances where `n²` virtual processors would make simulation itself
//!   quadratic; the *time shape* (what the paper's bounds are about) is
//!   identical.

use crate::machine::{AccessMode, Pram};
use crate::Word;

/// Which implementation strategy a primitive should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Execute every virtual processor of the textbook algorithm.
    #[default]
    Faithful,
    /// Compute directly, charge the textbook cost.
    Charged,
}

/// Broadcast `mem[src]` to `mem[dst_base..dst_base+n]`.
///
/// On a CRCW (or CREW) PRAM this is one step with `n` processors, all
/// concurrently reading `src`.
///
/// # Panics
/// Panics under EREW (the whole point of the Section 5 separation).
pub fn broadcast(pram: &mut Pram, src: usize, dst_base: usize, n: usize) {
    assert_ne!(
        pram.mode(),
        AccessMode::Erew,
        "broadcast in one step needs concurrent reads"
    );
    pram.step(n, |pid, ctx| {
        let v = ctx.read(src);
        ctx.write(dst_base + pid, v);
    });
}

/// Constant-time maximum of `mem[base..base+n]` on the Arbitrary CRCW PRAM,
/// written to `mem[out]`. Uses a scratch region `mem[scratch..scratch+n]`.
///
/// This is the classic 3-step, `n²`-processor algorithm (referenced in
/// Section 4.1: "a simple constant time computation with p² processors"):
/// clear loser flags; every ordered pair marks the smaller element a loser;
/// the unique non-loser writes the result.
///
/// Cost: 3 steps, `O(n²)` work (faithful) — or the same charges with direct
/// computation (charged).
pub fn max_o1(pram: &mut Pram, base: usize, n: usize, scratch: usize, out: usize, fid: Fidelity) {
    assert!(n >= 1);
    assert_eq!(
        pram.mode(),
        AccessMode::CrcwArbitrary,
        "max_o1 needs Arbitrary CRCW"
    );
    match fid {
        Fidelity::Faithful => {
            pram.step(n, |pid, ctx| ctx.write(scratch + pid, 0));
            pram.step(n * n, |pid, ctx| {
                let i = pid / n;
                let j = pid % n;
                if i == j {
                    return;
                }
                let vi = ctx.read(base + i);
                let vj = ctx.read(base + j);
                // i loses if strictly smaller, or equal with larger index
                // (ties broken toward the smaller index so exactly one
                // element survives).
                if vi < vj || (vi == vj && i > j) {
                    ctx.write(scratch + i, 1);
                }
            });
            pram.step(n, |pid, ctx| {
                let loser = ctx.read(scratch + pid);
                if loser == 0 {
                    let v = ctx.read(base + pid);
                    ctx.write(out, v);
                }
            });
        }
        Fidelity::Charged => {
            let m = (0..n).map(|i| pram.mem()[base + i]).max().unwrap();
            pram.mem_mut()[out] = m;
            pram.charge_time(3);
            pram.charge_work(2 * n as u64 + (n as u64) * (n as u64));
        }
    }
}

/// For each of `rows` rows of width `cols` starting at `base` (row-major),
/// write the column index of the leftmost nonzero entry (or `-1`) to
/// `out_base + row`.
///
/// Faithful version: the pairwise-knockout constant-time algorithm with
/// `cols²` processors per row on the Arbitrary CRCW (3 steps). Scratch:
/// `rows·cols` cells at `scratch`.
pub fn leftmost_nonzero_rows(
    pram: &mut Pram,
    base: usize,
    rows: usize,
    cols: usize,
    scratch: usize,
    out_base: usize,
    fid: Fidelity,
) {
    assert_eq!(pram.mode(), AccessMode::CrcwArbitrary);
    match fid {
        Fidelity::Faithful => {
            // Initialize out to -1 and loser flags to 0.
            pram.step(rows * cols, |pid, ctx| ctx.write(scratch + pid, 0));
            pram.step(rows, |pid, ctx| ctx.write(out_base + pid, -1));
            // Knockout: (row, i, j) with i < j; if entry (row, i) nonzero,
            // (row, j) is not leftmost.
            pram.step(rows * cols * cols, |pid, ctx| {
                let row = pid / (cols * cols);
                let rest = pid % (cols * cols);
                let i = rest / cols;
                let j = rest % cols;
                if i >= j {
                    return;
                }
                let vi = ctx.read(base + row * cols + i);
                if vi != 0 {
                    ctx.write(scratch + row * cols + j, 1);
                }
            });
            // Surviving nonzero entries write their index.
            pram.step(rows * cols, |pid, ctx| {
                let row = pid / cols;
                let col = pid % cols;
                let v = ctx.read(base + row * cols + col);
                let loser = ctx.read(scratch + row * cols + col);
                if v != 0 && loser == 0 {
                    ctx.write(out_base + row, col as Word);
                }
            });
        }
        Fidelity::Charged => {
            for row in 0..rows {
                let mut found: Word = -1;
                for col in 0..cols {
                    if pram.mem()[base + row * cols + col] != 0 {
                        found = col as Word;
                        break;
                    }
                }
                pram.mem_mut()[out_base + row] = found;
            }
            pram.charge_time(4);
            pram.charge_work((rows * cols) as u64 + rows as u64 + (rows * cols * cols) as u64);
        }
    }
}

/// Work-inefficient but EREW-legal exclusive prefix sum (Blelloch scan) over
/// `mem[base..base+n]`, in place; `n` must be a power of two. Returns the
/// total. `O(lg n)` steps, `O(n)` work.
pub fn prefix_sum_exclusive(pram: &mut Pram, base: usize, n: usize) -> Word {
    assert!(
        n.is_power_of_two(),
        "prefix_sum_exclusive needs a power-of-two length"
    );
    // Up-sweep.
    let mut d = 1usize;
    while d < n {
        let stride = 2 * d;
        let active = n / stride;
        pram.step(active, move |pid, ctx| {
            let left = base + pid * stride + d - 1;
            let right = base + pid * stride + stride - 1;
            let a = ctx.read(left);
            let b = ctx.read(right);
            ctx.write(right, a + b);
        });
        d = stride;
    }
    let total = pram.mem()[base + n - 1];
    // Clear the root, then down-sweep.
    pram.step(1, move |_pid, ctx| ctx.write(base + n - 1, 0));
    let mut d = n / 2;
    while d >= 1 {
        let stride = 2 * d;
        let active = n / stride;
        pram.step(active, move |pid, ctx| {
            let left = base + pid * stride + d - 1;
            let right = base + pid * stride + stride - 1;
            let a = ctx.read(left);
            let b = ctx.read(right);
            ctx.write(left, b);
            ctx.write(right, a + b);
        });
        d /= 2;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_copies_value() {
        let mut pram = Pram::new(AccessMode::CrcwArbitrary, 64);
        pram.mem_mut()[0] = 99;
        broadcast(&mut pram, 0, 8, 16);
        assert!(pram.mem()[8..24].iter().all(|&v| v == 99));
        assert_eq!(pram.time(), 2); // read + write counted as 2 ops in 1 step
    }

    #[test]
    #[should_panic(expected = "concurrent reads")]
    fn broadcast_rejected_on_erew() {
        let mut pram = Pram::new(AccessMode::Erew, 8);
        broadcast(&mut pram, 0, 1, 4);
    }

    #[test]
    fn max_o1_faithful_finds_max() {
        let mut pram = Pram::new(AccessMode::CrcwArbitrary, 64);
        let vals: [Word; 8] = [3, 1, 4, 1, 5, 9, 2, 6];
        pram.mem_mut()[0..8].copy_from_slice(&vals);
        max_o1(&mut pram, 0, 8, 16, 32, Fidelity::Faithful);
        assert_eq!(pram.mem()[32], 9);
    }

    #[test]
    fn max_o1_faithful_handles_ties() {
        let mut pram = Pram::new(AccessMode::CrcwArbitrary, 64);
        pram.mem_mut()[0..4].copy_from_slice(&[7, 7, 7, 7]);
        max_o1(&mut pram, 0, 4, 16, 32, Fidelity::Faithful);
        assert_eq!(pram.mem()[32], 7);
    }

    #[test]
    fn max_o1_charged_matches_faithful() {
        let vals: [Word; 6] = [10, -3, 8, 22, 0, 22];
        let mut a = Pram::new(AccessMode::CrcwArbitrary, 64);
        a.mem_mut()[0..6].copy_from_slice(&vals);
        max_o1(&mut a, 0, 6, 16, 40, Fidelity::Faithful);
        let mut b = Pram::new(AccessMode::CrcwArbitrary, 64);
        b.mem_mut()[0..6].copy_from_slice(&vals);
        max_o1(&mut b, 0, 6, 16, 40, Fidelity::Charged);
        assert_eq!(a.mem()[40], b.mem()[40]);
        // Charged fidelity charges the same time shape (constant steps).
        assert!(b.time() <= a.time() + 3);
    }

    #[test]
    fn max_o1_single_element() {
        let mut pram = Pram::new(AccessMode::CrcwArbitrary, 16);
        pram.mem_mut()[0] = -5;
        max_o1(&mut pram, 0, 1, 4, 8, Fidelity::Faithful);
        assert_eq!(pram.mem()[8], -5);
    }

    #[test]
    fn leftmost_nonzero_faithful() {
        let mut pram = Pram::new(AccessMode::CrcwArbitrary, 256);
        // 3 rows × 4 cols at base 0.
        let rows = [
            [0, 0, 5, 1], // leftmost nonzero at 2
            [7, 0, 0, 0], // 0
            [0, 0, 0, 0], // none → -1
        ];
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                pram.mem_mut()[r * 4 + c] = v;
            }
        }
        leftmost_nonzero_rows(&mut pram, 0, 3, 4, 64, 128, Fidelity::Faithful);
        assert_eq!(&pram.mem()[128..131], &[2, 0, -1]);
    }

    #[test]
    fn leftmost_nonzero_charged_matches_faithful() {
        let mut rng_vals = vec![0i64; 32];
        for (i, v) in rng_vals.iter_mut().enumerate() {
            *v = if i % 3 == 0 { 0 } else { (i % 5) as Word };
        }
        let mut a = Pram::new(AccessMode::CrcwArbitrary, 1024);
        let mut b = Pram::new(AccessMode::CrcwArbitrary, 1024);
        a.mem_mut()[..32].copy_from_slice(&rng_vals);
        b.mem_mut()[..32].copy_from_slice(&rng_vals);
        leftmost_nonzero_rows(&mut a, 0, 4, 8, 256, 512, Fidelity::Faithful);
        leftmost_nonzero_rows(&mut b, 0, 4, 8, 256, 512, Fidelity::Charged);
        assert_eq!(&a.mem()[512..516], &b.mem()[512..516]);
    }

    #[test]
    fn prefix_sum_exclusive_small() {
        let mut pram = Pram::new(AccessMode::Erew, 8);
        pram.mem_mut()[0..8].copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let total = prefix_sum_exclusive(&mut pram, 0, 8);
        assert_eq!(total, 36);
        assert_eq!(pram.mem(), &[0, 1, 3, 6, 10, 15, 21, 28]);
    }

    #[test]
    fn prefix_sum_is_erew_legal() {
        // The engine would have errored on any exclusivity violation; run a
        // larger instance to exercise all sweep levels.
        let n = 64;
        let mut pram = Pram::new(AccessMode::Erew, n);
        for i in 0..n {
            pram.mem_mut()[i] = (i as Word) + 1;
        }
        let total = prefix_sum_exclusive(&mut pram, 0, n);
        assert_eq!(total, (n * (n + 1) / 2) as Word);
        for i in 0..n {
            assert_eq!(pram.mem()[i], (i * (i + 1) / 2) as Word);
        }
        // O(lg n) steps: 2·lg n sweeps + 1 clear.
        assert!(pram.steps() <= 2 * 6 + 1);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn prefix_sum_rejects_non_power_of_two() {
        let mut pram = Pram::new(AccessMode::Erew, 6);
        let _ = prefix_sum_exclusive(&mut pram, 0, 6);
    }
}
