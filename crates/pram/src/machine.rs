//! The step-synchronous PRAM engine.
//!
//! One [`Pram::step`] call runs a closure once per (virtual) processor, in
//! parallel with rayon. Within a step a processor may read shared cells
//! (values from the *pre-step* memory), read the ROM, and write shared cells
//! (applied at the end of the step). The engine audits every access:
//!
//! * **EREW** — at most one processor may read a cell and at most one may
//!   write it per step; a cell read by one processor and written by another
//!   in the same step is a hazard.
//! * **CREW** — concurrent reads allowed; writes exclusive.
//! * **CRCW (Arbitrary)** — concurrent reads and writes allowed; when
//!   several processors write one cell, an arbitrary one succeeds. For
//!   reproducibility the engine lets the lowest processor id win, a valid
//!   instance of the Arbitrary rule.
//! * **QRQW** — concurrent accesses allowed but queued: the step's time is
//!   the maximum, over cells, of the number of accesses to that cell.
//!
//! ### Time and work accounting
//!
//! A step in which every processor performs `O(1)` memory operations is one
//! PRAM step. The engine charges `time += max(1, max_i ops_i)` (so a
//! processor issuing `k` operations honestly costs `k` time) plus, under
//! QRQW, the maximum cell queue. Work is `Σ_i max(1, ops_i)` over
//! processors that were invoked.
//!
//! The number of processors is *per step*: the paper's Section 4.1
//! algorithms freely use `p²` or `p·⌈lg lg p⌉` virtual processors for
//! constant-time sub-steps, and so do we.

use crate::Word;
use pbw_models::EpochCounts;
use pbw_trace::{TraceEvent, TraceSink, TraceSource};
use rayon::prelude::*;
use std::sync::Arc;

/// Concurrent-access discipline enforced by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Exclusive read, exclusive write.
    Erew,
    /// Concurrent read, exclusive write.
    Crew,
    /// Queued read, queued write: concurrent access costs time equal to the
    /// longest per-cell queue (Gibbons–Matias–Ramachandran).
    Qrqw,
    /// Concurrent read, concurrent write with the Arbitrary resolution rule.
    CrcwArbitrary,
}

/// Errors raised when a program violates the selected access mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PramError {
    /// Two processors read the same cell under an exclusive-read mode.
    ReadConflict { addr: usize, contention: u64 },
    /// Two processors wrote the same cell under an exclusive-write mode.
    WriteConflict { addr: usize, contention: u64 },
    /// A cell was both read and written (by different processors) in one
    /// step under an exclusive mode, so the read's value is ill-defined.
    ReadWriteHazard { addr: usize },
    /// Access outside shared memory.
    BadAddress { addr: usize, size: usize },
    /// Access outside the ROM.
    BadRomAddress { addr: usize, size: usize },
}

impl std::fmt::Display for PramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PramError::ReadConflict { addr, contention } => {
                write!(
                    f,
                    "{contention} concurrent reads of cell {addr} under exclusive-read mode"
                )
            }
            PramError::WriteConflict { addr, contention } => {
                write!(
                    f,
                    "{contention} concurrent writes of cell {addr} under exclusive-write mode"
                )
            }
            PramError::ReadWriteHazard { addr } => {
                write!(
                    f,
                    "cell {addr} both read and written in one exclusive-mode step"
                )
            }
            PramError::BadAddress { addr, size } => {
                write!(f, "shared address {addr} out of bounds (size {size})")
            }
            PramError::BadRomAddress { addr, size } => {
                write!(f, "ROM address {addr} out of bounds (size {size})")
            }
        }
    }
}

impl std::error::Error for PramError {}

/// Accounting for one executed step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Time charged for this step (`max(1, max_i ops_i)`, plus queueing
    /// under QRQW).
    pub time: u64,
    /// Work charged (`Σ_i max(1, ops_i)`).
    pub work: u64,
    /// Maximum per-cell read contention observed.
    pub max_read_contention: u64,
    /// Maximum per-cell write contention observed.
    pub max_write_contention: u64,
}

#[derive(Debug, Default, Clone)]
struct ProcRecord {
    reads: Vec<usize>,
    rom_reads: u64,
    writes: Vec<(usize, Word)>,
}

impl ProcRecord {
    /// Empty the record for the next step, keeping its capacity.
    fn clear(&mut self) {
        self.reads.clear();
        self.rom_reads = 0;
        self.writes.clear();
    }
}

/// Per-processor handle passed to step closures.
pub struct PramCtx<'a> {
    mem: &'a [Word],
    rom: &'a [Word],
    rec: &'a mut ProcRecord,
    fault: Option<PramError>,
}

impl<'a> PramCtx<'a> {
    /// Read a shared cell (value as of the start of the step).
    pub fn read(&mut self, addr: usize) -> Word {
        if addr >= self.mem.len() {
            self.fault.get_or_insert(PramError::BadAddress {
                addr,
                size: self.mem.len(),
            });
            return 0;
        }
        self.rec.reads.push(addr);
        self.mem[addr]
    }

    /// Read a ROM cell (concurrently readable in every mode; the PRAM(m)
    /// input lives here).
    pub fn read_rom(&mut self, addr: usize) -> Word {
        if addr >= self.rom.len() {
            self.fault.get_or_insert(PramError::BadRomAddress {
                addr,
                size: self.rom.len(),
            });
            return 0;
        }
        self.rec.rom_reads += 1;
        self.rom[addr]
    }

    /// Write a shared cell (applied at the end of the step).
    pub fn write(&mut self, addr: usize, value: Word) {
        if addr >= self.mem.len() {
            self.fault.get_or_insert(PramError::BadAddress {
                addr,
                size: self.mem.len(),
            });
            return;
        }
        self.rec.writes.push((addr, value));
    }

    /// Number of ROM cells.
    pub fn rom_len(&self) -> usize {
        self.rom.len()
    }

    /// Number of shared cells.
    pub fn mem_len(&self) -> usize {
        self.mem.len()
    }
}

/// A step-synchronous PRAM (optionally a PRAM(m): `mem.len() = m` cells plus
/// a ROM).
///
/// ```
/// use pbw_pram::{AccessMode, Pram};
///
/// // Arbitrary-CRCW: 8 processors race to write one cell — the lowest id
/// // wins (a deterministic instance of the Arbitrary rule).
/// let mut pram = Pram::new(AccessMode::CrcwArbitrary, 4);
/// pram.step(8, |pid, ctx| ctx.write(0, 100 + pid as i64));
/// assert_eq!(pram.mem()[0], 100);
///
/// // The same program is an exclusive-write violation under EREW:
/// let mut erew = Pram::new(AccessMode::Erew, 4);
/// assert!(erew.try_step(8, |pid, ctx| ctx.write(0, pid as i64)).is_err());
/// ```
/// Audit-representation crossover: a step is "dense" (flat-array tallies,
/// O(m) clears) when the shared memory holds at most this many cells per
/// participating processor; sparser steps use the epoch-stamped tallies.
/// This is a *cells-vs-procs* axis, distinct from the active-senders-vs-p
/// crossover that `pbw_sim::density` calibrates at runtime (this crate
/// doesn't depend on `pbw-sim`); the ratio matches that module's
/// `DEFAULT_FACTOR`, and either representation yields identical verdicts,
/// so the constant only moves wall-clock.
const DENSE_AUDIT_CELLS_PER_PROC: usize = 4;

#[derive(Clone)]
pub struct Pram {
    mem: Vec<Word>,
    rom: Vec<Word>,
    mode: AccessMode,
    time: u64,
    work: u64,
    steps: u64,
    sink: Arc<dyn TraceSink>,
    trace_label: String,
    /// Recycled per-processor access records; grown to the largest `nprocs`
    /// seen, cleared (capacity kept) at the start of every step.
    records: Vec<ProcRecord>,
    /// Contention-audit tallies, one slot per shared cell, epoch-stamped so
    /// the per-step reset is O(1) and the conflict scan walks only the
    /// cells this step touched — never all `m` of them. Used when the step
    /// touches few cells relative to `m`; dense steps take the plain-array
    /// twins below, whose straight-line fill/scan is cheaper per cell.
    readers: EpochCounts,
    writers: EpochCounts,
    /// Dense-path tallies (`fill(0)` + direct indexing); only steps with
    /// `m <= DENSE_AUDIT_CELLS_PER_PROC * nprocs` pay their O(m) clears.
    dense_readers: Vec<u64>,
    dense_writers: Vec<u64>,
    /// Representative accessor pids; meaningful only at cells the current
    /// step's tallies touched, so they are never cleared.
    reader_pid: Vec<usize>,
    writer_pid: Vec<usize>,
    /// Distinct-cell scratch for the per-processor audit.
    audit_cells: Vec<usize>,
    /// Write-apply scratch: per-cell first-writer marks (epoch-stamped on
    /// the sparse path, a plain bool array on the dense one) and one
    /// processor's last-write-per-cell list.
    written: EpochCounts,
    dense_written: Vec<bool>,
    per_proc_writes: Vec<(usize, Word)>,
}

impl std::fmt::Debug for Pram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pram")
            .field("mem", &self.mem)
            .field("rom", &self.rom)
            .field("mode", &self.mode)
            .field("time", &self.time)
            .field("work", &self.work)
            .field("steps", &self.steps)
            .finish_non_exhaustive()
    }
}

impl Pram {
    /// A PRAM with `size` shared cells and no ROM.
    ///
    /// The machine captures the process-wide trace sink
    /// ([`pbw_trace::global_sink`]) at construction; use [`Pram::set_sink`]
    /// to attach a specific sink instead.
    pub fn new(mode: AccessMode, size: usize) -> Self {
        Self::with_rom(mode, size, Vec::new())
    }

    /// A PRAM(m): `m` shared cells plus a concurrently readable ROM holding
    /// the input (Mansour–Nisan–Vishkin). Reading the ROM never violates an
    /// exclusive mode and never counts toward shared-cell contention.
    pub fn with_rom(mode: AccessMode, m: usize, rom: Vec<Word>) -> Self {
        Self {
            mem: vec![0; m],
            rom,
            mode,
            time: 0,
            work: 0,
            steps: 0,
            sink: pbw_trace::global_sink(),
            trace_label: String::new(),
            records: Vec::new(),
            readers: EpochCounts::new(m),
            writers: EpochCounts::new(m),
            dense_readers: vec![0; m],
            dense_writers: vec![0; m],
            reader_pid: vec![usize::MAX; m],
            writer_pid: vec![usize::MAX; m],
            audit_cells: Vec::new(),
            written: EpochCounts::new(m),
            dense_written: vec![false; m],
            per_proc_writes: Vec::new(),
        }
    }

    /// Attach a trace sink, replacing the one captured at construction.
    pub fn set_sink(&mut self, sink: Arc<dyn TraceSink>) -> &mut Self {
        self.sink = sink;
        self
    }

    /// Label stamped on every trace event this machine emits.
    pub fn set_trace_label(&mut self, label: impl Into<String>) -> &mut Self {
        self.trace_label = label.into();
        self
    }

    /// The access mode.
    pub fn mode(&self) -> AccessMode {
        self.mode
    }

    /// Shared memory contents.
    pub fn mem(&self) -> &[Word] {
        &self.mem
    }

    /// Mutable shared memory (setup only; not charged).
    pub fn mem_mut(&mut self) -> &mut [Word] {
        &mut self.mem
    }

    /// ROM contents.
    pub fn rom(&self) -> &[Word] {
        &self.rom
    }

    /// Total time charged so far.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Total work charged so far.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Number of `step` calls so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Add `t` to the time counter without executing anything. Used by
    /// primitives that *compute* the result of a well-known algorithm
    /// directly but must charge its published cost (each caller documents
    /// what is being charged).
    pub fn charge_time(&mut self, t: u64) {
        self.time += t;
    }

    /// Add `w` to the work counter (see [`Pram::charge_time`]).
    pub fn charge_work(&mut self, w: u64) {
        self.work += w;
    }

    /// Execute one step with `nprocs` (virtual) processors, panicking on
    /// access-mode violations.
    pub fn step<F>(&mut self, nprocs: usize, f: F) -> StepReport
    where
        F: Fn(usize, &mut PramCtx<'_>) + Sync,
    {
        self.try_step(nprocs, f)
            .unwrap_or_else(|e| panic!("PRAM step failed: {e}"))
    }

    /// Execute one step, returning access-mode violations as errors.
    pub fn try_step<F>(&mut self, nprocs: usize, f: F) -> Result<StepReport, PramError>
    where
        F: Fn(usize, &mut PramCtx<'_>) + Sync,
    {
        // Run the processors in parallel over the recycled records. The
        // fallible collect reports the lowest-pid fault, matching the old
        // sequential first-fault scan.
        if self.records.len() < nprocs {
            self.records.resize_with(nprocs, ProcRecord::default);
        }
        {
            let Self {
                ref mem,
                ref rom,
                ref mut records,
                ..
            } = *self;
            let run: Result<Vec<()>, PramError> = records[..nprocs]
                .par_iter_mut()
                .enumerate()
                .map(|(pid, rec)| {
                    rec.clear();
                    let mut ctx = PramCtx {
                        mem,
                        rom,
                        rec,
                        fault: None,
                    };
                    f(pid, &mut ctx);
                    match ctx.fault.take() {
                        Some(e) => Err(e),
                        None => Ok(()),
                    }
                })
                .collect();
            run?;
        }

        let Self {
            ref mut mem,
            ref records,
            ref mut readers,
            ref mut writers,
            ref mut dense_readers,
            ref mut dense_writers,
            ref mut reader_pid,
            ref mut writer_pid,
            ref mut audit_cells,
            ref mut written,
            ref mut dense_written,
            ref mut per_proc_writes,
            mode,
            ..
        } = *self;
        let records = &records[..nprocs];
        let m_cells = mem.len();

        // Contention audit. Tracks, per cell, how many *distinct processors*
        // read/wrote it and a representative pid, so that a processor
        // reading and writing its own cell in one step is not flagged.
        //
        // Two audit representations, same verdicts: when the memory is
        // large relative to the step (few cells touched), the tallies are
        // epoch-stamped so the reset is O(1) and the conflict scan walks
        // only the touched-cell dirty lists — the step costs O(ops),
        // independent of `m`. When the step is dense (`m` on the order of
        // the op count), plain arrays with `fill(0)` clears and a straight
        // 0..m scan are cheaper per cell than stamp-checked accesses, so
        // dense steps keep the original flat-array path. Both report the
        // violation at the lowest address with identical classification.
        let dense = m_cells <= DENSE_AUDIT_CELLS_PER_PROC * nprocs;
        let mut max_r = 0u64;
        let mut max_w = 0u64;
        if dense {
            dense_readers.fill(0);
            dense_writers.fill(0);
            for (pid, rec) in records.iter().enumerate() {
                // Count distinct cells per processor so a double-read by
                // one processor is not an EREW violation.
                audit_cells.clear();
                audit_cells.extend_from_slice(&rec.reads);
                audit_cells.sort_unstable();
                audit_cells.dedup();
                for &a in audit_cells.iter() {
                    dense_readers[a] += 1;
                    reader_pid[a] = pid;
                }
                audit_cells.clear();
                audit_cells.extend(rec.writes.iter().map(|&(a, _)| a));
                audit_cells.sort_unstable();
                audit_cells.dedup();
                for &a in audit_cells.iter() {
                    dense_writers[a] += 1;
                    writer_pid[a] = pid;
                }
            }
            for addr in 0..m_cells {
                let r = dense_readers[addr];
                let w = dense_writers[addr];
                max_r = max_r.max(r);
                max_w = max_w.max(w);
                // A read and a write of one cell by the *same* processor is
                // an ordinary local read-modify-write, legal in every mode.
                let cross_rw =
                    r > 0 && w > 0 && !(r == 1 && w == 1 && reader_pid[addr] == writer_pid[addr]);
                match mode {
                    AccessMode::Erew => {
                        if r > 1 {
                            return Err(PramError::ReadConflict {
                                addr,
                                contention: r,
                            });
                        }
                        if w > 1 {
                            return Err(PramError::WriteConflict {
                                addr,
                                contention: w,
                            });
                        }
                        if cross_rw {
                            return Err(PramError::ReadWriteHazard { addr });
                        }
                    }
                    AccessMode::Crew => {
                        if w > 1 {
                            return Err(PramError::WriteConflict {
                                addr,
                                contention: w,
                            });
                        }
                        if cross_rw {
                            return Err(PramError::ReadWriteHazard { addr });
                        }
                    }
                    AccessMode::Qrqw | AccessMode::CrcwArbitrary => {}
                }
            }
        } else {
            readers.reset();
            writers.reset();
            for (pid, rec) in records.iter().enumerate() {
                audit_cells.clear();
                audit_cells.extend_from_slice(&rec.reads);
                audit_cells.sort_unstable();
                audit_cells.dedup();
                for &a in audit_cells.iter() {
                    readers.add(a, 1);
                    reader_pid[a] = pid;
                }
                audit_cells.clear();
                audit_cells.extend(rec.writes.iter().map(|&(a, _)| a));
                audit_cells.sort_unstable();
                audit_cells.dedup();
                for &a in audit_cells.iter() {
                    writers.add(a, 1);
                    writer_pid[a] = pid;
                }
            }
            for a in readers.touched().iter() {
                max_r = max_r.max(readers.get(a));
            }
            for a in writers.touched().iter() {
                max_w = max_w.max(writers.get(a));
            }
            // The touched masks iterate ascending, but the two are chained
            // (readers then writers), so find the lowest violating address
            // explicitly, then classify it with the same per-cell priority
            // as the dense scan (read conflict, then write conflict, then
            // hazard).
            if matches!(mode, AccessMode::Erew | AccessMode::Crew) {
                let mut bad: Option<usize> = None;
                for addr in readers.touched().iter().chain(writers.touched().iter()) {
                    let r = readers.get(addr);
                    let w = writers.get(addr);
                    let cross_rw = r > 0
                        && w > 0
                        && !(r == 1 && w == 1 && reader_pid[addr] == writer_pid[addr]);
                    let violation = match mode {
                        AccessMode::Erew => r > 1 || w > 1 || cross_rw,
                        _ => w > 1 || cross_rw,
                    };
                    if violation {
                        bad = Some(bad.map_or(addr, |b| b.min(addr)));
                    }
                }
                if let Some(addr) = bad {
                    let r = readers.get(addr);
                    let w = writers.get(addr);
                    return Err(match mode {
                        AccessMode::Erew if r > 1 => PramError::ReadConflict {
                            addr,
                            contention: r,
                        },
                        _ if w > 1 => PramError::WriteConflict {
                            addr,
                            contention: w,
                        },
                        _ => PramError::ReadWriteHazard { addr },
                    });
                }
            }
        }

        // Apply writes: lowest pid wins per cell (Arbitrary rule instance).
        // Records are indexed by pid, so a forward scan keeping the first
        // write per cell implements it; within one processor the *last* write
        // to a cell is its final value.
        if dense {
            dense_written.fill(false);
        } else {
            written.reset();
        }
        for rec in records {
            // Last write per cell from this processor:
            per_proc_writes.clear();
            for &(a, v) in &rec.writes {
                if let Some(slot) = per_proc_writes.iter_mut().find(|(pa, _)| *pa == a) {
                    slot.1 = v;
                } else {
                    per_proc_writes.push((a, v));
                }
            }
            if dense {
                for &(a, v) in per_proc_writes.iter() {
                    if !dense_written[a] {
                        dense_written[a] = true;
                        mem[a] = v;
                    }
                }
            } else {
                for &(a, v) in per_proc_writes.iter() {
                    if written.get(a) == 0 {
                        written.add(a, 1);
                        mem[a] = v;
                    }
                }
            }
        }

        // Accounting.
        let mut max_ops = 0u64;
        let mut work = 0u64;
        for rec in records {
            let ops = rec.reads.len() as u64 + rec.writes.len() as u64 + rec.rom_reads;
            max_ops = max_ops.max(ops);
            work += ops.max(1);
        }
        let mut time = max_ops.max(1);
        if mode == AccessMode::Qrqw {
            time = time.max(max_r).max(max_w);
        }
        if self.sink.enabled() {
            self.emit_trace(nprocs, max_r.max(max_w));
        }
        self.time += time;
        self.work += work;
        self.steps += 1;
        Ok(StepReport {
            time,
            work,
            max_read_contention: max_r,
            max_write_contention: max_w,
        })
    }

    /// Synthesize a trace event for one executed step.
    ///
    /// The PRAM has no explicit machine parameters or injection slots, so the
    /// event uses the natural mapping: `p` = this step's processor count,
    /// `m` = the number of shared cells (the PRAM(m) bandwidth), `g = L = 1`,
    /// and the pipelined injection view in which a processor issues its k-th
    /// memory operation at step `k` (hence `m_t` = processors with more than
    /// `t` operations, and at most one injection per processor per slot).
    fn emit_trace(&self, nprocs: usize, kappa: u64) {
        let records = &self.records[..nprocs];
        let mut builder = pbw_models::ProfileBuilder::new();
        let mut per_proc_sent: Vec<u64> = Vec::with_capacity(records.len());
        let mut per_proc_recv: Vec<u64> = Vec::with_capacity(records.len());
        let mut total_ops = 0u64;
        for rec in records {
            let reads = rec.reads.len() as u64 + rec.rom_reads;
            let writes = rec.writes.len() as u64;
            builder.record_memory_ops(reads, writes);
            per_proc_sent.push(reads + writes);
            per_proc_recv.push(reads);
            total_ops += reads + writes;
        }
        builder.record_contention(kappa);
        let max_ops = per_proc_sent.iter().copied().max().unwrap_or(0);
        for t in 0..max_ops {
            let m_t = per_proc_sent.iter().filter(|&&ops| ops > t).count() as u64;
            builder.record_injections(t, m_t);
        }
        let params = pbw_models::MachineParams::new_unchecked(
            records.len().max(1),
            1,
            self.mem.len().max(1),
            1,
        );
        self.sink.record(TraceEvent::for_superstep(
            TraceSource::Pram,
            self.trace_label.clone(),
            self.steps,
            params,
            builder.build(),
            per_proc_sent,
            per_proc_recv,
            u64::from(max_ops > 0),
            total_ops,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_across_steps() {
        let mut pram = Pram::new(AccessMode::Erew, 8);
        pram.step(4, |pid, ctx| ctx.write(pid, pid as Word * 2));
        assert_eq!(&pram.mem()[..4], &[0, 2, 4, 6]);
        pram.step(4, |pid, ctx| {
            let v = ctx.read(pid);
            ctx.write(pid + 4, v + 1);
        });
        assert_eq!(&pram.mem()[4..8], &[1, 3, 5, 7]);
    }

    #[test]
    fn reads_see_pre_step_memory() {
        let mut pram = Pram::new(AccessMode::Erew, 2);
        pram.mem_mut()[0] = 10;
        // Proc 0 reads cell 0 while proc 1 writes cell 1; then swap roles —
        // but within one step a read of a written cell is a hazard, so use
        // disjoint cells and check the read got the old value.
        pram.step(2, |pid, ctx| {
            if pid == 0 {
                let v = ctx.read(0);
                assert_eq!(v, 10);
                ctx.write(0, v + 1); // same proc read+write its own cell: fine
            }
        });
        assert_eq!(pram.mem()[0], 11);
    }

    #[test]
    fn erew_rejects_concurrent_read() {
        let mut pram = Pram::new(AccessMode::Erew, 4);
        let err = pram.try_step(4, |_pid, ctx| {
            ctx.read(0);
        });
        assert_eq!(
            err.unwrap_err(),
            PramError::ReadConflict {
                addr: 0,
                contention: 4
            }
        );
    }

    #[test]
    fn erew_rejects_concurrent_write() {
        let mut pram = Pram::new(AccessMode::Erew, 4);
        let err = pram.try_step(3, |_pid, ctx| ctx.write(2, 1));
        assert_eq!(
            err.unwrap_err(),
            PramError::WriteConflict {
                addr: 2,
                contention: 3
            }
        );
    }

    #[test]
    fn erew_rejects_read_write_hazard() {
        let mut pram = Pram::new(AccessMode::Erew, 4);
        let err = pram.try_step(2, |pid, ctx| {
            if pid == 0 {
                ctx.read(1);
            } else {
                ctx.write(1, 5);
            }
        });
        assert_eq!(err.unwrap_err(), PramError::ReadWriteHazard { addr: 1 });
    }

    #[test]
    fn crew_allows_concurrent_read_rejects_concurrent_write() {
        let mut pram = Pram::new(AccessMode::Crew, 4);
        assert!(pram
            .try_step(4, |_pid, ctx| {
                ctx.read(0);
            })
            .is_ok());
        let err = pram.try_step(2, |_pid, ctx| ctx.write(0, 1));
        assert!(matches!(
            err.unwrap_err(),
            PramError::WriteConflict { addr: 0, .. }
        ));
    }

    #[test]
    fn crcw_arbitrary_lowest_pid_wins() {
        let mut pram = Pram::new(AccessMode::CrcwArbitrary, 4);
        pram.step(8, |pid, ctx| ctx.write(0, 100 + pid as Word));
        assert_eq!(pram.mem()[0], 100);
    }

    #[test]
    fn last_write_within_processor_wins() {
        let mut pram = Pram::new(AccessMode::CrcwArbitrary, 2);
        pram.step(1, |_pid, ctx| {
            ctx.write(0, 1);
            ctx.write(0, 2);
            ctx.write(0, 3);
        });
        assert_eq!(pram.mem()[0], 3);
    }

    #[test]
    fn qrqw_charges_queue_time() {
        let mut pram = Pram::new(AccessMode::Qrqw, 4);
        let r = pram.step(6, |_pid, ctx| {
            ctx.read(3);
        });
        assert_eq!(r.time, 6); // queue of 6 readers
        assert_eq!(r.max_read_contention, 6);
        let r2 = pram.step(6, |pid, ctx| {
            ctx.read(pid % 4);
        });
        assert_eq!(r2.time, 2); // at most 2 readers per cell
    }

    #[test]
    fn crcw_charges_unit_time_for_concurrent_access() {
        let mut pram = Pram::new(AccessMode::CrcwArbitrary, 4);
        let r = pram.step(64, |_pid, ctx| {
            ctx.read(0);
        });
        assert_eq!(r.time, 1);
        assert_eq!(r.max_read_contention, 64);
    }

    #[test]
    fn multi_op_step_charges_ops() {
        let mut pram = Pram::new(AccessMode::Erew, 16);
        let r = pram.step(2, |pid, ctx| {
            for k in 0..4 {
                ctx.read(pid * 8 + k);
            }
        });
        assert_eq!(r.time, 4);
        assert_eq!(r.work, 8);
    }

    #[test]
    fn rom_reads_are_concurrent_in_erew() {
        let mut pram = Pram::with_rom(AccessMode::Erew, 2, vec![7, 8, 9]);
        // Every processor reads ROM cell 1: no exclusivity violation.
        pram.step(16, |pid, ctx| {
            let v = ctx.read_rom(1);
            if pid == 0 {
                ctx.write(0, v);
            }
        });
        assert_eq!(pram.mem()[0], 8);
    }

    #[test]
    fn bad_address_reported() {
        let mut pram = Pram::new(AccessMode::Erew, 4);
        let err = pram.try_step(1, |_pid, ctx| {
            ctx.read(10);
        });
        assert_eq!(
            err.unwrap_err(),
            PramError::BadAddress { addr: 10, size: 4 }
        );
    }

    #[test]
    fn bad_rom_address_reported() {
        let mut pram = Pram::with_rom(AccessMode::Erew, 4, vec![1]);
        let err = pram.try_step(1, |_pid, ctx| {
            ctx.read_rom(3);
        });
        assert_eq!(
            err.unwrap_err(),
            PramError::BadRomAddress { addr: 3, size: 1 }
        );
    }

    #[test]
    fn double_read_by_one_processor_is_not_a_conflict() {
        let mut pram = Pram::new(AccessMode::Erew, 4);
        assert!(pram
            .try_step(1, |_pid, ctx| {
                ctx.read(0);
                ctx.read(0);
            })
            .is_ok());
    }

    #[test]
    fn explicit_charges_accumulate() {
        let mut pram = Pram::new(AccessMode::CrcwArbitrary, 1);
        pram.charge_time(5);
        pram.charge_work(50);
        assert_eq!(pram.time(), 5);
        assert_eq!(pram.work(), 50);
    }

    #[test]
    fn trace_events_synthesize_profile() {
        use pbw_trace::RecordingSink;
        let sink = Arc::new(RecordingSink::new());
        let mut pram = Pram::new(AccessMode::Qrqw, 8);
        pram.set_sink(sink.clone()).set_trace_label("qrqw");
        pram.step(4, |pid, ctx| {
            ctx.read(3);
            ctx.write(pid + 4, 1);
        });
        let events = sink.take();
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.source, TraceSource::Pram);
        assert_eq!(ev.label, "qrqw");
        assert_eq!(ev.superstep, 0);
        // 4 processors × (1 read + 1 write): pipelined histogram [4, 4].
        assert_eq!(ev.profile.injections, vec![4, 4]);
        assert_eq!(ev.profile.total_messages, 8);
        assert_eq!(ev.delivered, 8);
        assert_eq!(ev.profile.max_contention, 4);
        assert_eq!(ev.params.p, 4);
        assert_eq!(ev.params.m, 8);
        assert_eq!(ev.max_proc_slot_injections, 1);
    }

    #[test]
    fn time_and_work_accumulate_across_steps() {
        let mut pram = Pram::new(AccessMode::CrcwArbitrary, 8);
        pram.step(4, |pid, ctx| ctx.write(pid, 1));
        pram.step(4, |pid, ctx| {
            ctx.read(pid);
        });
        assert_eq!(pram.time(), 2);
        assert_eq!(pram.work(), 8);
        assert_eq!(pram.steps(), 2);
    }
}
