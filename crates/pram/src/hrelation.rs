//! Realizing h-relations on the CRCW PRAM in `O(h)` time (Section 4.1).
//!
//! The paper converts CRCW PRAM lower bounds into BSP(g)/QSM(g) lower bounds
//! by showing the *converse* simulation is cheap: any BSP(g) superstep
//! (an h-relation) can be realized on a CRCW PRAM in `O(h)` time. Three
//! constructions are given, all implemented here:
//!
//! * [`realize_dense`] — the polynomial-processor algorithm: a `p × x̄p`
//!   array holds message ids, each row is drained by repeatedly extracting
//!   its leftmost nonzero entry (a constant-time CRCW primitive).
//! * [`realize_teams`] — the `(p·lg lg p)`-processor branch for small `x̄`:
//!   every undelivered message concurrently writes a per-destination claim
//!   cell each round (Arbitrary rule); exactly one wins per destination per
//!   round, so `ȳ` rounds suffice.
//! * [`realize_chainsort`] — the branch for `x̄ ≥ lg lg p`: messages are
//!   integer chain sorted by destination (charged at the published
//!   `O(lg lg p)` time / `O(p·x̄·lg lg p)` work of Bhatt et al. [12]), then
//!   each destination scans its run in `O(ȳ)` steps.
//!
//! All three return an [`HrelationOutcome`] with the delivered messages and
//! the exact time/work the PRAM engine charged, so tests can assert the
//! `O(h)` shape.

use crate::machine::{AccessMode, Pram};
use crate::primitives::{leftmost_nonzero_rows, max_o1, Fidelity};
use crate::Word;

/// A point-to-point message of an h-relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Message {
    /// Sending processor.
    pub src: usize,
    /// Destination processor.
    pub dest: usize,
    /// Payload tag.
    pub tag: Word,
}

/// Result of realizing an h-relation.
#[derive(Debug, Clone)]
pub struct HrelationOutcome {
    /// Messages delivered to each destination, in delivery order.
    pub received: Vec<Vec<Message>>,
    /// PRAM time charged.
    pub time: u64,
    /// PRAM work charged.
    pub work: u64,
    /// `h = max_i max(s_i, r_i)` of the input relation.
    pub h: u64,
}

/// Flatten per-processor send lists into a global message table and compute
/// `(x̄, ȳ, h)`.
fn flatten(sends: &[Vec<(usize, Word)>]) -> (Vec<Message>, u64, u64) {
    let p = sends.len();
    let mut msgs = Vec::new();
    let mut recv_counts = vec![0u64; p];
    let mut xbar = 0u64;
    for (src, list) in sends.iter().enumerate() {
        xbar = xbar.max(list.len() as u64);
        for &(dest, tag) in list {
            assert!(dest < p, "destination {dest} out of range");
            recv_counts[dest] += 1;
            msgs.push(Message { src, dest, tag });
        }
    }
    let ybar = recv_counts.iter().copied().max().unwrap_or(0);
    (msgs, xbar, ybar)
}

/// Verify that `outcome` delivered exactly the multiset of messages in
/// `sends`, each to its correct destination.
pub fn check_delivery(sends: &[Vec<(usize, Word)>], outcome: &HrelationOutcome) -> bool {
    let (mut expect, _, _) = flatten(sends);
    let mut got: Vec<Message> = Vec::new();
    for (dest, list) in outcome.received.iter().enumerate() {
        for m in list {
            if m.dest != dest {
                return false;
            }
            got.push(*m);
        }
    }
    expect.sort();
    got.sort();
    expect == got
}

/// The Section 4.1 polynomial-processor `O(h)` realization.
///
/// Memory plan: message-id array `A` of `p` rows × `x̄·p` columns (row `i` =
/// messages destined for processor `i`, block `j` = those sent by `j`),
/// scratch of the same size for the leftmost-nonzero knockout, an `out`
/// vector of `p` cells, per-processor counts and the `x̄` computation, and a
/// receive region.
///
/// `fid` selects whether the constant-time primitives execute all their
/// virtual processors or charge their published cost (see
/// [`Fidelity`]).
pub fn realize_dense(sends: &[Vec<(usize, Word)>], fid: Fidelity) -> HrelationOutcome {
    let p = sends.len();
    assert!(p > 0);
    let (msgs, xbar, ybar) = flatten(sends);
    let n = msgs.len();
    let h = xbar.max(ybar);
    if n == 0 {
        return HrelationOutcome {
            received: vec![Vec::new(); p],
            time: 0,
            work: 0,
            h,
        };
    }

    let cols = (xbar as usize) * p;
    let base_arr = 0;
    let base_scratch = base_arr + p * cols;
    let base_out = base_scratch + p * cols;
    let base_cnt = base_out + p; // per-proc send counts
    let base_cnt_scratch = base_cnt + p;
    let cell_xbar = base_cnt_scratch + p;
    let base_recv = cell_xbar + 1; // p rows × n cols
    let base_cursor = base_recv + p * n;
    let total_cells = base_cursor + p;

    let mut pram = Pram::new(AccessMode::CrcwArbitrary, total_cells);

    // Each processor publishes its send count, then x̄ is computed with the
    // constant-time maximum ("a simple constant time computation with p²
    // processors").
    let counts: Vec<Word> = sends.iter().map(|l| l.len() as Word).collect();
    pram.step(p, |pid, ctx| ctx.write(base_cnt + pid, counts[pid]));
    max_o1(&mut pram, base_cnt, p, base_cnt_scratch, cell_xbar, fid);
    debug_assert_eq!(pram.mem()[cell_xbar], xbar as Word);

    // Placement: processor j's k-th message to destination i goes to
    // A[i][j·x̄ + (#earlier messages from j to i)]. Each processor writes its
    // ≤ x̄ messages in ≤ x̄ steps (local bookkeeping is free).
    let mut placements: Vec<Vec<(usize, Word)>> = vec![Vec::new(); p]; // (cell, msgid+1)
    {
        let mut per_pair: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for (id, m) in msgs.iter().enumerate() {
            let k = per_pair.entry((m.src, m.dest)).or_insert(0);
            let col = m.src * xbar as usize + *k;
            assert!(
                *k < xbar as usize,
                "block overflow: >x̄ messages on one (src,dest) pair"
            );
            *k += 1;
            placements[m.src].push((base_arr + m.dest * cols + col, (id + 1) as Word));
        }
    }
    for step in 0..xbar as usize {
        let placements = &placements;
        pram.step(p, move |pid, ctx| {
            if let Some(&(cell, v)) = placements[pid].get(step) {
                ctx.write(cell, v);
            }
        });
    }

    // Drain loop: leftmost nonzero per row → transmit → zero, until empty.
    let mut rounds = 0u64;
    loop {
        leftmost_nonzero_rows(&mut pram, base_arr, p, cols, base_scratch, base_out, fid);
        let any = (0..p).any(|i| pram.mem()[base_out + i] >= 0);
        if !any {
            break;
        }
        pram.step(p, move |pid, ctx| {
            let col = ctx.read(base_out + pid);
            if col < 0 {
                return;
            }
            let cell = base_arr + pid * cols + col as usize;
            let id_plus = ctx.read(cell);
            let cursor = ctx.read(base_cursor + pid);
            ctx.write(base_recv + pid * n + cursor as usize, id_plus);
            ctx.write(base_cursor + pid, cursor + 1);
            ctx.write(cell, 0);
        });
        rounds += 1;
        assert!(rounds <= n as u64 + 1, "drain loop failed to make progress");
    }
    debug_assert_eq!(rounds, ybar);

    let received = collect_received(&pram, base_recv, base_cursor, p, n, &msgs);
    HrelationOutcome {
        received,
        time: pram.time(),
        work: pram.work(),
        h,
    }
}

/// The concurrent-write "teams" realization (paper branch for
/// `x̄ < lg lg p`): every undelivered message writes a claim cell for its
/// destination each round; the Arbitrary rule picks one winner per
/// destination per round, so `ȳ` rounds complete the relation in `O(h)`
/// time.
pub fn realize_teams(sends: &[Vec<(usize, Word)>]) -> HrelationOutcome {
    let p = sends.len();
    assert!(p > 0);
    let (msgs, xbar, ybar) = flatten(sends);
    let n = msgs.len();
    let h = xbar.max(ybar);
    if n == 0 {
        return HrelationOutcome {
            received: vec![Vec::new(); p],
            time: 0,
            work: 0,
            h,
        };
    }

    let base_claim = 0; // p cells
    let base_done = p; // n cells
    let base_recv = base_done + n; // p × n
    let base_cursor = base_recv + p * n;
    let total = base_cursor + p;
    let mut pram = Pram::new(AccessMode::CrcwArbitrary, total);

    let dests: Vec<usize> = msgs.iter().map(|m| m.dest).collect();
    let mut rounds = 0u64;
    loop {
        // Every pending message claims its destination cell; the Arbitrary
        // rule (deterministically: the lowest message id) wins.
        let dests = &dests;
        pram.step(n, move |pid, ctx| {
            let done = ctx.read(base_done + pid);
            if done == 0 {
                ctx.write(base_claim + dests[pid], (pid + 1) as Word);
            }
        });
        // Destinations accept the winning message and clear their claim.
        pram.step(p, move |pid, ctx| {
            let claim = ctx.read(base_claim + pid);
            if claim > 0 {
                let cursor = ctx.read(base_cursor + pid);
                ctx.write(base_recv + pid * n + cursor as usize, claim);
                ctx.write(base_cursor + pid, cursor + 1);
                ctx.write(base_done + (claim - 1) as usize, 1);
                ctx.write(base_claim + pid, 0);
            }
        });
        rounds += 1;
        let all_done = (0..n).all(|i| pram.mem()[base_done + i] == 1);
        if all_done {
            break;
        }
        assert!(rounds <= n as u64 + 1, "teams loop failed to make progress");
    }
    debug_assert_eq!(rounds, ybar);

    let received = collect_received(&pram, base_recv, base_cursor, p, n, &msgs);
    HrelationOutcome {
        received,
        time: pram.time(),
        work: pram.work(),
        h,
    }
}

/// The chain-sort realization (paper branch for `x̄ ≥ lg lg p`): messages are
/// stably integer chain sorted by destination — charged at the published
/// `O(lg lg p)` time and `O(p·x̄·lg lg p)` work of [12] — after which each
/// destination identifies and scans its contiguous run in `O(ȳ)` steps.
pub fn realize_chainsort(sends: &[Vec<(usize, Word)>]) -> HrelationOutcome {
    let p = sends.len();
    assert!(p > 0);
    let (msgs, xbar, ybar) = flatten(sends);
    let n = msgs.len();
    let h = xbar.max(ybar);
    if n == 0 {
        return HrelationOutcome {
            received: vec![Vec::new(); p],
            time: 0,
            work: 0,
            h,
        };
    }

    let base_sorted = 0; // n cells: msgid+1, sorted by destination
    let base_first = n; // p cells: first index of each destination's run (+1, 0 = none)
    let base_recv = base_first + p;
    let base_cursor = base_recv + p * n;
    let total = base_cursor + p;
    let mut pram = Pram::new(AccessMode::CrcwArbitrary, total);

    // Integer chain sort by destination — computed directly, charged at the
    // cost published in [12] (Bhatt–Diks–Hagerup–Prasad–Radzik–Saxena):
    // O(lg lg p) time, O(p·x̄·lg lg p) work.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&id| msgs[id].dest); // stable
    let lglg = (64 - (p.max(4) as u64).leading_zeros() as u64).max(2); // lg p
    let lglg = (64 - lglg.leading_zeros() as u64).max(1); // lg lg p
    pram.charge_time(lglg);
    pram.charge_work((p as u64) * xbar.max(1) * lglg);
    for (slot, &id) in order.iter().enumerate() {
        pram.mem_mut()[base_sorted + slot] = (id + 1) as Word;
    }

    // Run-head detection: processor k checks whether sorted[k] starts a new
    // destination run (one concurrent-read step).
    let msgs_ref = &msgs;
    pram.step(n, move |pid, ctx| {
        let id = (ctx.read(base_sorted + pid) - 1) as usize;
        let dest = msgs_ref[id].dest;
        let is_head = if pid == 0 {
            true
        } else {
            let prev_id = (ctx.read(base_sorted + pid - 1) - 1) as usize;
            msgs_ref[prev_id].dest != dest
        };
        if is_head {
            ctx.write(base_first + dest, (pid + 1) as Word);
        }
    });

    // Each destination scans its run: ȳ rounds, one read per round.
    for round in 0..ybar {
        let msgs_ref = &msgs;
        pram.step(p, move |pid, ctx| {
            let first = ctx.read(base_first + pid);
            if first == 0 {
                return;
            }
            let idx = (first - 1) as usize + round as usize;
            if idx >= n {
                return;
            }
            let id_plus = ctx.read(base_sorted + idx);
            let id = (id_plus - 1) as usize;
            if msgs_ref[id].dest != pid {
                return;
            }
            let cursor = ctx.read(base_cursor + pid);
            ctx.write(base_recv + pid * n + cursor as usize, id_plus);
            ctx.write(base_cursor + pid, cursor + 1);
        });
    }

    let received = collect_received(&pram, base_recv, base_cursor, p, n, &msgs);
    HrelationOutcome {
        received,
        time: pram.time(),
        work: pram.work(),
        h,
    }
}

fn collect_received(
    pram: &Pram,
    base_recv: usize,
    base_cursor: usize,
    p: usize,
    n: usize,
    msgs: &[Message],
) -> Vec<Vec<Message>> {
    (0..p)
        .map(|i| {
            let cnt = pram.mem()[base_cursor + i] as usize;
            (0..cnt)
                .map(|k| {
                    let id_plus = pram.mem()[base_recv + i * n + k];
                    msgs[(id_plus - 1) as usize]
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_relation() -> Vec<Vec<(usize, Word)>> {
        vec![
            vec![(1, 10), (2, 11), (1, 12)], // proc 0 sends 3
            vec![(0, 20)],
            vec![(0, 30), (3, 31)],
            vec![],
        ]
    }

    #[test]
    fn dense_delivers_everything() {
        let sends = simple_relation();
        let out = realize_dense(&sends, Fidelity::Faithful);
        assert!(check_delivery(&sends, &out));
        assert_eq!(out.h, 3);
    }

    #[test]
    fn dense_charged_matches_faithful_delivery() {
        let sends = simple_relation();
        let a = realize_dense(&sends, Fidelity::Faithful);
        let b = realize_dense(&sends, Fidelity::Charged);
        assert_eq!(a.received, b.received);
    }

    #[test]
    fn teams_delivers_everything() {
        let sends = simple_relation();
        let out = realize_teams(&sends);
        assert!(check_delivery(&sends, &out));
    }

    #[test]
    fn chainsort_delivers_everything() {
        let sends = simple_relation();
        let out = realize_chainsort(&sends);
        assert!(check_delivery(&sends, &out));
    }

    #[test]
    fn empty_relation_is_free() {
        let sends: Vec<Vec<(usize, Word)>> = vec![vec![]; 4];
        for out in [
            realize_dense(&sends, Fidelity::Charged),
            realize_teams(&sends),
            realize_chainsort(&sends),
        ] {
            assert_eq!(out.time, 0);
            assert!(out.received.iter().all(|r| r.is_empty()));
        }
    }

    #[test]
    fn all_to_one_hotspot() {
        // ȳ = p - 1: everyone sends to processor 0.
        let p = 8;
        let sends: Vec<Vec<(usize, Word)>> = (0..p)
            .map(|src| {
                if src == 0 {
                    vec![]
                } else {
                    vec![(0, src as Word)]
                }
            })
            .collect();
        for out in [
            realize_dense(&sends, Fidelity::Charged),
            realize_teams(&sends),
            realize_chainsort(&sends),
        ] {
            assert!(check_delivery(&sends, &out));
            assert_eq!(out.received[0].len(), p - 1);
            assert_eq!(out.h, (p - 1) as u64);
        }
    }

    #[test]
    fn one_to_all_scatter() {
        // x̄ = p - 1: processor 0 sends to everyone else.
        let p = 8;
        let mut sends: Vec<Vec<(usize, Word)>> = vec![vec![]; p];
        sends[0] = (1..p).map(|d| (d, 100 + d as Word)).collect();
        for out in [
            realize_dense(&sends, Fidelity::Charged),
            realize_teams(&sends),
            realize_chainsort(&sends),
        ] {
            assert!(check_delivery(&sends, &out));
        }
    }

    #[test]
    fn multiple_messages_same_pair() {
        let sends = vec![vec![(1, 1), (1, 2), (1, 3), (1, 4)], vec![]];
        for out in [
            realize_dense(&sends, Fidelity::Charged),
            realize_teams(&sends),
            realize_chainsort(&sends),
        ] {
            assert!(check_delivery(&sends, &out));
            assert_eq!(out.received[1].len(), 4);
        }
    }

    #[test]
    fn time_scales_linearly_with_h() {
        // Time must be O(h): doubling h should roughly double time, not
        // square it. Use the teams variant (fully faithful).
        let p = 8;
        let mk = |h: usize| -> Vec<Vec<(usize, Word)>> {
            (0..p)
                .map(|src| (0..h).map(|k| (((src + 1) % p), k as Word)).collect())
                .collect()
        };
        let t1 = realize_teams(&mk(4)).time;
        let t2 = realize_teams(&mk(8)).time;
        assert!(t2 <= t1 * 3, "t1={t1} t2={t2}: not O(h)");
        assert!(t2 >= t1, "t must grow with h");
    }

    #[test]
    fn dense_time_is_linear_in_h() {
        let p = 4;
        let mk = |h: usize| -> Vec<Vec<(usize, Word)>> {
            (0..p)
                .map(|src| (0..h).map(|k| (((src + 1) % p), k as Word)).collect())
                .collect()
        };
        let t1 = realize_dense(&mk(3), Fidelity::Charged).time;
        let t2 = realize_dense(&mk(6), Fidelity::Charged).time;
        assert!(t2 <= t1 * 3, "t1={t1} t2={t2}");
    }

    #[test]
    fn delivery_order_in_teams_is_lowest_id_first() {
        // Within one destination, lower message ids win earlier rounds.
        let sends = vec![vec![(2, 5), (2, 6)], vec![(2, 7)], vec![]];
        let out = realize_teams(&sends);
        let tags: Vec<Word> = out.received[2].iter().map(|m| m.tag).collect();
        assert_eq!(tags, vec![5, 6, 7]);
    }
}
