//! # pbw-adversary
//!
//! The dynamic unbalanced-routing problem of Section 6.2: messages arrive
//! over an infinite time line, chosen by an adversary of the Adversarial
//! Queuing Theory (AQT) style of Borodin et al., constrained by a window
//! length `w`, a *global arrival rate* `α` and a *local arrival rate* `β`:
//! in any `W ≥ w` consecutive steps the adversary may inject at most `⌈αW⌉`
//! messages in total, at most `⌈βW⌉` from any one source and at most `⌈βW⌉`
//! to any one destination.
//!
//! * [`adversary`] — the [`adversary::Adversary`] trait, concrete
//!   adversaries (steady, bursty, random, and the single-target instability
//!   witness of Theorem 6.5), and a sliding-window compliance checker.
//! * [`dynamic`] — the routers: [`dynamic::AlgorithmB`] (the paper's
//!   interval-partitioned BSP(m) router built on Unbalanced-Send) and
//!   [`dynamic::BspGIntervalRouter`] (the Theorem 6.5 BSP(g) router, stable
//!   exactly when `β ≤ 1/g`), plus [`dynamic::StabilityTrace`] analysis.
//! * [`mg1`] — a discrete-event M/G/1 queue with the heavy-tailed service
//!   law `S₀''` of Claim 6.8, cross-checked against the
//!   Pollaczek–Khinchine closed forms in `pbw_models::bounds`.
//! * [`thresholds`] — empirical calibration of Theorem 6.7's `(a, b, r, u)`
//!   constants for Unbalanced-Send, deriving the stability thresholds the
//!   dynamic experiments verify.

pub mod adversary;
pub mod dynamic;
pub mod mg1;
pub mod thresholds;

pub use adversary::{
    Adversary, AqtParams, BurstyAdversary, ComplianceChecker, OnOffAdversary, RandomAdversary,
    RotatingHotSpotAdversary, SingleTargetAdversary, SteadyAdversary,
};
pub use dynamic::{AlgorithmB, BackpressureConfig, BspGIntervalRouter, ShedPolicy, StabilityTrace};
