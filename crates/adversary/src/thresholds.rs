//! Empirical calibration of the Theorem 6.7 stability thresholds.
//!
//! Theorem 6.7 is stated abstractly: *if* algorithm A solves the static
//! problem in `σ = max(a·n/m, b·x̄, b·ȳ)` with per-batch failure
//! probability `r` (and a polynomially decaying tail), *then* Algorithm B
//! is stable for `α ≤ m/a − m·u/(w·a)` and `β ≤ 1/b − u/(w·b)` with slack
//! `u ≥ ⌊1.21·r·w⌋ + 1`.
//!
//! This module closes the loop empirically: it runs Unbalanced-Send on a
//! calibration set of random batches, fits `(a, b)` as the smallest
//! constants covering every observed service time, estimates `r` as the
//! observed failure frequency against that envelope, and derives the
//! theorem's `(u, α*, β*)`. The dynamic experiments then verify that
//! traffic below the derived `α*` is in fact absorbed.

use pbw_core::schedule::slot_loads;
use pbw_core::schedulers::{Scheduler, UnbalancedSend};
use pbw_core::workload::{self, Workload};
use pbw_models::{bounds, PenaltyFn};

/// Calibration result for algorithm A = Unbalanced-Send(ε).
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Fitted `a`: service ≤ a·n/m on (1−r) of batches.
    pub a: f64,
    /// Fitted `b`: service ≤ b·max(x̄, ȳ) on the h-bound regime.
    pub b: f64,
    /// Observed failure rate against the `(a, b)` envelope.
    pub r: f64,
    /// The theorem's slack `u = ⌊1.21·r·w⌋ + 1`.
    pub u: f64,
    /// Derived global-rate threshold `α* = m/a − m·u/(w·a)`.
    pub alpha_star: f64,
    /// Derived local-rate threshold `β* = 1/b − u/(w·b)`.
    pub beta_star: f64,
}

/// The real elapsed machine time of a batch scheduled by Unbalanced-Send
/// under the exponential penalty (the service-time notion of `dynamic.rs`).
pub fn batch_service(wl: &Workload, m: usize, eps: f64, seed: u64) -> f64 {
    let sched = UnbalancedSend::new(eps).schedule(wl, m, seed);
    let loads = slot_loads(&sched, wl);
    let table = PenaltyFn::Exponential.table(m);
    loads.iter().map(|&l| table.charge(l).max(1.0)).sum()
}

/// Calibrate `(a, b, r)` over `batches` random workloads of roughly
/// `per_batch` messages each, then derive the Theorem 6.7 thresholds for
/// window `w`.
pub fn calibrate(
    p: usize,
    m: usize,
    eps: f64,
    w: f64,
    batches: usize,
    per_batch: u64,
    seed: u64,
) -> Calibration {
    assert!(batches > 0);
    // Envelope constants: start at the theorem's nominal values and grow
    // `a` until at most a 5% failure rate remains, then measure r exactly.
    let mut samples: Vec<(f64, f64, f64)> = Vec::with_capacity(batches); // (service, n/m, h)
    for i in 0..batches {
        let wl = workload::uniform_random(p, per_batch.max(1) / p as u64 + 1, seed ^ (i as u64));
        let service = batch_service(&wl, m, eps, seed.wrapping_add(i as u64 * 77));
        samples.push((service, wl.n_flits() as f64 / m as f64, wl.h() as f64));
    }
    let b = 1.0 + eps;
    let mut a = 1.0 + eps;
    loop {
        let failures = samples
            .iter()
            .filter(|&&(s, nm, h)| s > (a * nm).max(b * h))
            .count();
        let rate = failures as f64 / batches as f64;
        if rate <= 0.05 || a > 16.0 {
            let r = rate.max(1.0 / batches as f64); // conservative floor
            let u = bounds::dynamic_slack_u(r, w);
            return Calibration {
                a,
                b,
                r,
                u,
                alpha_star: bounds::dynamic_bsp_m_alpha_threshold(m, a, u, w),
                beta_star: bounds::dynamic_bsp_m_beta_threshold(b, u, w),
            };
        }
        a *= 1.1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AqtParams, SteadyAdversary};
    use crate::dynamic::AlgorithmB;

    #[test]
    fn calibration_produces_sane_constants() {
        let cal = calibrate(64, 8, 0.3, 64.0, 50, 256, 1);
        assert!(cal.a >= 1.3 && cal.a < 8.0, "a={}", cal.a);
        assert!((cal.b - 1.3).abs() < 1e-9);
        assert!(cal.r <= 0.06);
        assert!(cal.u >= 1.0);
        assert!(cal.alpha_star > 0.0 && cal.alpha_star < 8.0);
        assert!(cal.beta_star > 0.0 && cal.beta_star < 1.0);
    }

    #[test]
    fn traffic_below_derived_threshold_is_stable() {
        let (p, m, w) = (64usize, 8usize, 64u64);
        let cal = calibrate(p, m, 0.3, w as f64, 50, 256, 2);
        // Drive at 80% of the derived α*.
        let alpha = 0.8 * cal.alpha_star;
        let params = AqtParams {
            w,
            alpha,
            beta: cal.beta_star.min(0.5),
        };
        let mut adv = SteadyAdversary::new(p, params);
        let trace = AlgorithmB {
            p,
            m,
            w,
            eps: 0.3,
            seed: 3,
        }
        .run(&mut adv, 300);
        assert!(trace.looks_stable(), "growth {}", trace.backlog_growth());
    }

    #[test]
    fn batch_service_at_least_lower_bound() {
        let wl = workload::uniform_random(64, 16, 4);
        let s = batch_service(&wl, 8, 0.3, 9);
        assert!(s >= wl.n_flits() as f64 / 8.0);
        assert!(s >= wl.xbar() as f64);
    }

    #[test]
    fn service_scales_with_batch_size() {
        let small = batch_service(&workload::uniform_random(64, 8, 1), 8, 0.3, 5);
        let large = batch_service(&workload::uniform_random(64, 32, 1), 8, 0.3, 5);
        assert!(large > 2.0 * small);
    }
}
