//! The M/G/1 reduction of Claim 6.8.
//!
//! Theorem 6.7's stability proof dominates the interval system by an M/G/1
//! queue `S''`: Bernoulli arrivals at rate `r` (the per-interval failure
//! probability of algorithm A), service drawn from the heavy-tailed law
//! `S₀''` that takes value `k·w/u` with probability `1/k⁴ − 1/(k+1)⁴`
//! (`k ≥ 1`). The queue is stable when `r·E[S] < 1`, i.e. `1.21·r·w/u < 1`.
//!
//! This module provides the service-law sampler, a discrete-event M/G/1
//! simulator (Lindley recursion), and mean-queue measurement at departure
//! instants — cross-checked in tests against the Pollaczek–Khinchine
//! formula in `pbw_models::bounds`.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The service-time law `S₀''` of Claim 6.8: `P[S = k·w/u] = 1/k⁴ −
/// 1/(k+1)⁴` for integers `k ≥ 1`.
#[derive(Debug, Clone, Copy)]
pub struct ServiceLaw {
    /// Interval length `w`.
    pub w: f64,
    /// Slack `u`.
    pub u: f64,
}

impl ServiceLaw {
    /// Draw a service time.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: P[S ≤ k·w/u] = 1 − 1/(k+1)⁴, so
        // k = ⌈(1−U)^{−1/4}⌉ − 1 with U uniform.
        let unif: f64 = rng.gen_range(0.0..1.0);
        let k = ((1.0 - unif).powf(-0.25)).ceil() - 1.0;
        let k = k.max(1.0);
        k * self.w / self.u
    }

    /// First and second moments (numeric, `terms` series terms).
    pub fn moments(&self, terms: usize) -> (f64, f64) {
        pbw_models::bounds::mg1_service_moments(self.w, self.u, terms)
    }
}

/// Result of an M/G/1 simulation run.
#[derive(Debug, Clone)]
pub struct Mg1Outcome {
    /// Number of arrivals processed.
    pub arrivals: u64,
    /// Mean queue length observed at departure instants.
    pub mean_queue_at_departures: f64,
    /// Mean time-in-system (sojourn) per customer.
    pub mean_sojourn: f64,
    /// Maximum backlog (unfinished work) observed.
    pub max_backlog: f64,
    /// Utilization estimate `r·E[S]` from the realized stream.
    pub utilization: f64,
}

/// Simulate a discrete-time M/G/1 queue: an arrival occurs at each integer
/// step independently with probability `r`; service times are drawn from
/// `law`. FIFO, single server.
pub fn simulate_mg1(r: f64, law: ServiceLaw, steps: u64, seed: u64) -> Mg1Outcome {
    assert!((0.0..=1.0).contains(&r));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // (arrival_time, departure_time) for in-flight customers; Lindley:
    // departure = max(arrival, prev_departure) + service.
    let mut prev_departure = 0.0f64;
    let mut departures: Vec<(f64, f64)> = Vec::new(); // (arrival, departure)
    let mut total_service = 0.0f64;
    let mut arrivals = 0u64;
    let mut max_backlog = 0.0f64;
    for t in 0..steps {
        if rng.gen_bool(r) {
            arrivals += 1;
            let s = law.sample(&mut rng);
            total_service += s;
            let start = prev_departure.max(t as f64);
            let dep = start + s;
            departures.push((t as f64, dep));
            prev_departure = dep;
            max_backlog = max_backlog.max(dep - t as f64);
        }
    }
    // Queue length at departure instants: number of customers who have
    // arrived but not departed at each departure time.
    let mut mean_q = 0.0f64;
    if !departures.is_empty() {
        // departures are in FIFO order; arrival times ascending.
        let arr_times: Vec<f64> = departures.iter().map(|d| d.0).collect();
        let mut q_sum = 0.0f64;
        for (idx, &(_, dep)) in departures.iter().enumerate() {
            // customers with arrival ≤ dep and index > idx (not yet departed).
            let upper = arr_times.partition_point(|&a| a <= dep);
            q_sum += (upper.saturating_sub(idx + 1)) as f64;
        }
        mean_q = q_sum / departures.len() as f64;
    }
    let mean_sojourn = if departures.is_empty() {
        0.0
    } else {
        departures.iter().map(|&(a, d)| d - a).sum::<f64>() / departures.len() as f64
    };
    Mg1Outcome {
        arrivals,
        mean_queue_at_departures: mean_q,
        mean_sojourn,
        max_backlog,
        utilization: if steps == 0 {
            0.0
        } else {
            total_service / steps as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_law_is_at_least_w_over_u() {
        let law = ServiceLaw { w: 10.0, u: 2.0 };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..1000 {
            let s = law.sample(&mut rng);
            assert!(s >= 5.0 - 1e-12);
            assert!(
                (s / 5.0).fract().abs() < 1e-9,
                "quantized to multiples of w/u"
            );
        }
    }

    #[test]
    fn service_law_mean_matches_series() {
        let law = ServiceLaw { w: 8.0, u: 4.0 };
        let (m1, _) = law.moments(100_000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let samples = 200_000;
        let mean: f64 = (0..samples).map(|_| law.sample(&mut rng)).sum::<f64>() / samples as f64;
        assert!(
            (mean - m1).abs() / m1 < 0.02,
            "sampled {mean} vs series {m1}"
        );
        // Claim 6.8: E[S] < 1.21·w/u.
        assert!(m1 < 1.21 * 8.0 / 4.0);
    }

    #[test]
    fn stable_when_utilization_below_one() {
        // 1.21·r·w/u = 1.21·0.1·10/4 ≈ 0.30 < 1 → stable, modest backlog.
        let law = ServiceLaw { w: 10.0, u: 4.0 };
        let out = simulate_mg1(0.1, law, 200_000, 3);
        assert!(out.utilization < 0.5);
        assert!(out.mean_queue_at_departures < 5.0);
    }

    #[test]
    fn unstable_when_utilization_above_one() {
        // r·E[S] ≈ 0.9·(1.18·10) ≈ 10 ≫ 1 → backlog grows with run length.
        let law = ServiceLaw { w: 10.0, u: 1.0 };
        let short = simulate_mg1(0.9, law, 20_000, 4);
        let long = simulate_mg1(0.9, law, 80_000, 4);
        assert!(long.max_backlog > 3.0 * short.max_backlog);
    }

    #[test]
    fn mean_queue_tracks_pollaczek_khinchine() {
        // Moderate utilization; compare simulated departure-instant queue to
        // the P-K formula with the law's numeric moments.
        let law = ServiceLaw { w: 6.0, u: 3.0 };
        let r = 0.25;
        let (m1, m2) = law.moments(100_000);
        let predicted = pbw_models::bounds::mg1_mean_queue(r, m1, m2);
        let out = simulate_mg1(r, law, 2_000_000, 7);
        let rel = (out.mean_queue_at_departures - predicted).abs() / predicted.max(0.1);
        assert!(
            rel < 0.25,
            "simulated {} vs P-K {predicted}",
            out.mean_queue_at_departures
        );
    }

    #[test]
    fn sojourn_exceeds_service_mean() {
        let law = ServiceLaw { w: 10.0, u: 4.0 };
        let (m1, _) = law.moments(10_000);
        let out = simulate_mg1(0.2, law, 100_000, 9);
        assert!(out.mean_sojourn >= m1 * 0.9);
    }

    #[test]
    fn zero_rate_is_empty() {
        let law = ServiceLaw { w: 10.0, u: 4.0 };
        let out = simulate_mg1(0.0, law, 10_000, 1);
        assert_eq!(out.arrivals, 0);
        assert_eq!(out.mean_queue_at_departures, 0.0);
    }
}
