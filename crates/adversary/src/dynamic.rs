//! The dynamic routers of Section 6.2 and stability analysis.
//!
//! Both routers partition the time line into intervals and route each
//! interval's arrivals as one static batch:
//!
//! * [`AlgorithmB`] (Theorem 6.7) — intervals of length `w`; each batch is
//!   scheduled with Unbalanced-Send on the BSP(m); a batch's *service time*
//!   is the real elapsed machine time of its superstep, `Σ_t max(1,
//!   f_m(m_t))` over the schedule's span — a rare overloaded step really
//!   costs its exponential penalty, exactly the failure mode the theorem's
//!   M/G/1 argument absorbs.
//! * [`BspGIntervalRouter`] (Theorem 6.5) — intervals of length
//!   `max(g·⌈w/g⌉, L)`; a batch with per-processor maximum `h` is one
//!   h-relation costing `g·h`(+L). Stable iff `β ≤ 1/g`.
//!
//! Service is consumed through a Lindley-type backlog recursion: every
//! interval contributes `interval_len` time units of capacity; unfinished
//! batches queue FIFO. A [`StabilityTrace`] records backlog and queue-length
//! trajectories for the stability experiments.

use crate::adversary::Adversary;
use pbw_core::schedule::{audit_schedule, slot_loads};
use pbw_core::schedulers::{Scheduler, UnbalancedSend};
use pbw_core::workload::Workload;
use pbw_models::{MachineParams, PenaltyFn};
use pbw_trace::{TraceSink, TraceSource};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// What a bounded router queue does with messages that do not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Truncate the arriving batch: newest messages are shed first (the
    /// queue protects in-progress work).
    DropNewest,
    /// Evict the oldest unfinished batches to make room for fresh traffic
    /// (the queue protects recency).
    DropOldest,
}

/// Backpressure for the interval routers: a bounded batch queue with a
/// shedding policy and an overload watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackpressureConfig {
    /// Largest number of messages the queue may hold; arrivals beyond it
    /// are shed per `policy`.
    pub max_queue_msgs: u64,
    /// Queue length at or above which an interval counts as *overloaded*
    /// (drives [`StabilityTrace::overload_intervals`] and
    /// [`StabilityTrace::recovery_intervals`]).
    pub high_watermark: u64,
    /// What to shed when full.
    pub policy: ShedPolicy,
}

impl BackpressureConfig {
    /// A bounded queue shedding newest arrivals, with the watermark at half
    /// the bound.
    pub fn bounded(max_queue_msgs: u64) -> Self {
        BackpressureConfig {
            max_queue_msgs,
            high_watermark: (max_queue_msgs / 2).max(1),
            policy: ShedPolicy::DropNewest,
        }
    }
}

/// Time series from a dynamic-routing run.
#[derive(Debug, Clone)]
pub struct StabilityTrace {
    /// Interval length in machine steps.
    pub interval_len: u64,
    /// Messages waiting (in unfinished batches) at each interval boundary.
    pub queue_msgs: Vec<u64>,
    /// Outstanding service time (time units of work not yet performed) at
    /// each interval boundary.
    pub backlog_time: Vec<f64>,
    /// Service time of each completed batch.
    pub service_times: Vec<f64>,
    /// Total messages injected.
    pub injected: u64,
    /// Total messages delivered.
    pub delivered: u64,
    /// Per-batch sojourn times, in intervals (completion − arrival), for
    /// every batch that finished during the run.
    pub batch_delays: Vec<u64>,
    /// Messages shed by backpressure (0 without a [`BackpressureConfig`]).
    pub shed_msgs: u64,
    /// Intervals whose boundary queue length reached the high watermark.
    pub overload_intervals: u64,
    /// Messages retransmitted after in-transit loss (0 unless routed via
    /// [`AlgorithmB::run_with_faults`]).
    pub retransmitted: u64,
    /// The overload watermark in force (0 = unbounded queue).
    pub high_watermark: u64,
}

impl StabilityTrace {
    fn empty(interval_len: u64, intervals: u64) -> Self {
        StabilityTrace {
            interval_len,
            queue_msgs: Vec::with_capacity(intervals as usize),
            backlog_time: Vec::with_capacity(intervals as usize),
            service_times: Vec::new(),
            injected: 0,
            delivered: 0,
            batch_delays: Vec::new(),
            shed_msgs: 0,
            overload_intervals: 0,
            retransmitted: 0,
            high_watermark: 0,
        }
    }

    /// The q-th percentile of batch sojourn (in intervals); `None` if no
    /// batch completed or `q` is not in `[0, 1]`.
    pub fn delay_percentile(&self, q: f64) -> Option<u64> {
        if !(0.0..=1.0).contains(&q) || self.batch_delays.is_empty() {
            return None;
        }
        let mut d = self.batch_delays.clone();
        d.sort_unstable();
        let idx = ((d.len() - 1) as f64 * q).round() as usize;
        Some(d[idx])
    }

    /// Post-burst recovery time: intervals from the *last* overloaded
    /// boundary until the queue first falls back to half the watermark.
    /// `None` if the run never overloaded or never recovered.
    pub fn recovery_intervals(&self) -> Option<u64> {
        if self.high_watermark == 0 {
            return None;
        }
        let last_over = self
            .queue_msgs
            .iter()
            .rposition(|&q| q >= self.high_watermark)?;
        let target = self.high_watermark / 2;
        self.queue_msgs[last_over..]
            .iter()
            .position(|&q| q <= target)
            .map(|off| off as u64)
    }

    /// Mean batch sojourn in intervals.
    pub fn mean_delay(&self) -> f64 {
        if self.batch_delays.is_empty() {
            return 0.0;
        }
        self.batch_delays.iter().sum::<u64>() as f64 / self.batch_delays.len() as f64
    }

    /// Mean batch service time.
    pub fn mean_service(&self) -> f64 {
        if self.service_times.is_empty() {
            return 0.0;
        }
        self.service_times.iter().sum::<f64>() / self.service_times.len() as f64
    }

    /// Backlog growth per interval, estimated from the second half of the
    /// run (a stable system hovers near zero; an unstable one grows
    /// linearly).
    pub fn backlog_growth(&self) -> f64 {
        let n = self.backlog_time.len();
        if n < 8 {
            return 0.0;
        }
        let q3 = &self.backlog_time[n / 2..3 * n / 4];
        let q4 = &self.backlog_time[3 * n / 4..];
        let m3 = q3.iter().sum::<f64>() / q3.len() as f64;
        let m4 = q4.iter().sum::<f64>() / q4.len() as f64;
        (m4 - m3) / (n as f64 / 4.0)
    }

    /// Heuristic stability verdict: backlog does not grow by a significant
    /// fraction of the interval length per interval.
    pub fn looks_stable(&self) -> bool {
        self.backlog_growth() < 0.05 * self.interval_len as f64
    }

    /// Maximum queued message count over the last half of the run.
    pub fn max_late_queue(&self) -> u64 {
        let n = self.queue_msgs.len();
        self.queue_msgs[n / 2..].iter().copied().max().unwrap_or(0)
    }
}

/// A batch waiting for (or in) service.
#[derive(Debug, Clone)]
struct Batch {
    msgs: u64,
    service_left: f64,
    service_total: f64,
    arrived: u64, // interval index of arrival
}

/// Optional router behaviours threaded through [`run_interval_router_cfg`].
#[derive(Debug, Clone, Copy, Default)]
struct RouterCfg {
    /// Bounded queue + shedding; `None` = unbounded (the paper's model).
    bp: Option<BackpressureConfig>,
    /// In-transit loss `(φ, seed)`: each admitted message is independently
    /// lost with probability φ (after consuming its batch's bandwidth) and
    /// retransmitted with the next interval's arrivals.
    loss: Option<(f64, u64)>,
}

/// Message conservation: `injected == delivered + queue_msgs.last() +
/// shed_msgs` at every interval boundary (retransmission copies in flight
/// are counted inside `queue_msgs`).
fn run_interval_router_cfg<F>(
    adv: &mut dyn Adversary,
    interval_len: u64,
    intervals: u64,
    cfg: RouterCfg,
    mut service_of: F,
) -> StabilityTrace
where
    F: FnMut(&[(usize, usize)]) -> f64,
{
    let mut queue: Vec<Batch> = Vec::new();
    let mut trace = StabilityTrace::empty(interval_len, intervals);
    if let Some(bp) = cfg.bp {
        trace.high_watermark = bp.high_watermark;
    }
    // Messages lost in transit, awaiting retransmission next interval.
    let mut carry: Vec<(usize, usize)> = Vec::new();
    let mut t = 0u64;
    for interval_idx in 0..intervals {
        // Collect this interval's arrivals.
        let mut arrivals: Vec<(usize, usize)> = Vec::new();
        for _ in 0..interval_len {
            arrivals.extend(adv.inject(t));
            t += 1;
        }
        trace.injected += arrivals.len() as u64;
        // Retransmissions travel with the fresh traffic (already counted in
        // `injected` when first admitted).
        if !carry.is_empty() {
            let mut resend = std::mem::take(&mut carry);
            trace.retransmitted += resend.len() as u64;
            resend.extend(arrivals);
            arrivals = resend;
        }
        // Backpressure: the queue is bounded; shed per policy.
        if let Some(bp) = cfg.bp {
            let mut queued: u64 = queue.iter().map(|b| b.msgs).sum();
            if bp.policy == ShedPolicy::DropOldest {
                while queued + arrivals.len() as u64 > bp.max_queue_msgs && !queue.is_empty() {
                    let evicted = queue.remove(0);
                    queued -= evicted.msgs;
                    trace.shed_msgs += evicted.msgs;
                }
            }
            let room = bp.max_queue_msgs.saturating_sub(queued) as usize;
            if arrivals.len() > room {
                trace.shed_msgs += (arrivals.len() - room) as u64;
                arrivals.truncate(room);
            }
        }
        // They become a batch (service computed when it enters the queue —
        // the schedule is drawn when the batch starts transmitting, but its
        // duration is independent of queue state, so computing it now is
        // equivalent).
        let mut pushed_now = false;
        if !arrivals.is_empty() {
            let service = service_of(&arrivals);
            trace.service_times.push(service);
            // In-transit loss: every message consumed bandwidth above, but
            // the lost ones miss their ack and go back out next interval.
            let mut good = arrivals.len() as u64;
            if let Some((phi, seed)) = cfg.loss {
                if phi > 0.0 {
                    let mut rng = ChaCha8Rng::seed_from_u64(
                        seed ^ interval_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    for &msg in &arrivals {
                        if rng.gen_bool(phi) {
                            carry.push(msg);
                            good -= 1;
                        }
                    }
                }
            }
            queue.push(Batch {
                msgs: good,
                service_left: service,
                service_total: service,
                arrived: interval_idx,
            });
            pushed_now = true;
        }
        // Consume `interval_len` time units of capacity FIFO. The *current*
        // interval's batch is eligible only in the next interval (the paper
        // starts batch i at interval i+1), so withhold the batch that
        // arrived during this interval, if any.
        let withhold = usize::from(pushed_now);
        let eligible = queue.len() - withhold;
        let mut capacity = interval_len as f64;
        let mut done = 0usize;
        for b in queue.iter_mut().take(eligible) {
            if capacity <= 0.0 {
                break;
            }
            let used = b.service_left.min(capacity);
            b.service_left -= used;
            capacity -= used;
            if b.service_left <= 1e-9 {
                done += 1;
                trace.delivered += b.msgs;
                trace
                    .batch_delays
                    .push(interval_idx.saturating_sub(b.arrived));
            }
        }
        let _ = done;
        queue.retain(|b| b.service_left > 1e-9);
        // Sanity: a batch's service never exceeds its total.
        debug_assert!(queue
            .iter()
            .all(|b| b.service_left <= b.service_total + 1e-9));
        let boundary_q: u64 = queue.iter().map(|b| b.msgs).sum::<u64>() + carry.len() as u64;
        trace.queue_msgs.push(boundary_q);
        trace
            .backlog_time
            .push(queue.iter().map(|b| b.service_left).sum());
        if let Some(bp) = cfg.bp {
            if boundary_q >= bp.high_watermark {
                trace.overload_intervals += 1;
            }
        }
        debug_assert_eq!(
            trace.injected,
            trace.delivered + boundary_q + trace.shed_msgs
        );
    }
    trace
}

/// The paper's Algorithm B on the BSP(m): interval length `w`, per-batch
/// service measured from an actual Unbalanced-Send schedule under the
/// exponential penalty.
///
/// ```
/// use pbw_adversary::{AlgorithmB, AqtParams, SteadyAdversary};
///
/// let params = AqtParams { w: 64, alpha: 2.0, beta: 0.25 };
/// let mut adversary = SteadyAdversary::new(64, params);
/// let router = AlgorithmB { p: 64, m: 8, w: 64, eps: 0.3, seed: 1 };
/// let trace = router.run(&mut adversary, 100);
/// assert!(trace.looks_stable()); // α = 2 ≪ m/(1+ε)
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AlgorithmB {
    /// Number of processors.
    pub p: usize,
    /// Aggregate bandwidth `m`.
    pub m: usize,
    /// Interval length `w` (the adversary's window).
    pub w: u64,
    /// Unbalanced-Send slack ε.
    pub eps: f64,
    /// RNG seed (each batch gets an independent substream).
    pub seed: u64,
}

impl AlgorithmB {
    /// Route `intervals` windows of traffic from `adv`; returns the trace.
    ///
    /// Each routed batch additionally emits one [`TraceSource::Router`]
    /// event into the process-global trace sink (a no-op unless one is
    /// installed via [`pbw_trace::set_global_sink`]).
    pub fn run(&self, adv: &mut dyn Adversary, intervals: u64) -> StabilityTrace {
        self.run_with_sink(adv, intervals, pbw_trace::global_sink())
    }

    /// [`run`](Self::run) with an explicit trace sink: one event per
    /// non-empty batch, `superstep` = batch index, sequenced in routing
    /// order. The event's profile is the batch's Unbalanced-Send schedule
    /// audited against its arrivals.
    pub fn run_with_sink(
        &self,
        adv: &mut dyn Adversary,
        intervals: u64,
        sink: Arc<dyn TraceSink>,
    ) -> StabilityTrace {
        self.route(adv, intervals, RouterCfg::default(), sink)
    }

    /// [`run`](Self::run) behind a bounded router queue: arrivals beyond
    /// `bp.max_queue_msgs` are shed per `bp.policy`, and the trace gains
    /// overload/shed/recovery metrics.
    pub fn run_with_backpressure(
        &self,
        adv: &mut dyn Adversary,
        intervals: u64,
        bp: BackpressureConfig,
    ) -> StabilityTrace {
        let cfg = RouterCfg {
            bp: Some(bp),
            ..RouterCfg::default()
        };
        self.route(adv, intervals, cfg, pbw_trace::global_sink())
    }

    /// [`run`](Self::run) over a lossy network: each admitted message is
    /// independently lost in transit with probability `phi` (seeded,
    /// deterministic in `(fault_seed, interval)`) and retransmitted with the
    /// next interval's arrivals. Every attempt consumes bandwidth, so the
    /// effective arrival rate is `α/(1−φ)` — this is the stability-margin
    /// erosion measurement for Section 6.2.
    pub fn run_with_faults(
        &self,
        adv: &mut dyn Adversary,
        intervals: u64,
        phi: f64,
        fault_seed: u64,
    ) -> StabilityTrace {
        self.run_with_faults_to(adv, intervals, phi, fault_seed, pbw_trace::global_sink())
    }

    /// [`run_with_faults`](Self::run_with_faults) with an explicit trace
    /// sink. Parallel φ-sweeps route each loss rate into a private
    /// recording sink and replay events in sweep order, keeping the global
    /// trace byte-identical at every thread count.
    pub fn run_with_faults_to(
        &self,
        adv: &mut dyn Adversary,
        intervals: u64,
        phi: f64,
        fault_seed: u64,
        sink: Arc<dyn TraceSink>,
    ) -> StabilityTrace {
        assert!((0.0..1.0).contains(&phi), "drop rate must be in [0, 1)");
        let cfg = RouterCfg {
            bp: None,
            loss: Some((phi, fault_seed)),
        };
        self.route(adv, intervals, cfg, sink)
    }

    fn route(
        &self,
        adv: &mut dyn Adversary,
        intervals: u64,
        cfg: RouterCfg,
        sink: Arc<dyn TraceSink>,
    ) -> StabilityTrace {
        let mut batch_idx = 0u64;
        let p = self.p;
        let m = self.m;
        let eps = self.eps;
        let seed = self.seed;
        // Machine view for trace pricing: gap g ≈ p/m, unit latency.
        let params = MachineParams::new_unchecked(p, (p as u64 / m.max(1) as u64).max(1), m, 1);
        run_interval_router_cfg(adv, self.w, intervals, cfg, move |arrivals| {
            batch_idx += 1;
            let mut sends: Vec<Vec<usize>> = vec![Vec::new(); p];
            for &(s, d) in arrivals {
                sends[s].push(d);
            }
            let wl = Workload::from_dests(sends);
            let sched =
                UnbalancedSend::new(eps).schedule(&wl, m, seed ^ batch_idx.wrapping_mul(0x9E37));
            if sink.enabled() {
                let mut ev = audit_schedule(&sched, &wl, params, "algorithm-b");
                ev.source = TraceSource::Router;
                ev.superstep = batch_idx - 1;
                sink.record(ev);
            }
            // Real elapsed time: every step of the span costs
            // max(1, f_m(load)) under the exponential penalty.
            let loads = slot_loads(&sched, &wl);
            let table = PenaltyFn::Exponential.table(m);
            loads.iter().map(|&l| table.charge(l).max(1.0)).sum()
        })
    }
}

/// The Theorem 6.5 BSP(g) router: intervals of `max(g·⌈w/g⌉, L)` steps;
/// each batch is one h-relation costing `max(g·h, L)`.
#[derive(Debug, Clone, Copy)]
pub struct BspGIntervalRouter {
    /// Number of processors.
    pub p: usize,
    /// Per-processor gap `g`.
    pub g: u64,
    /// Latency `L`.
    pub l: u64,
    /// The adversary window `w`.
    pub w: u64,
}

impl BspGIntervalRouter {
    /// The router's interval length `max(g·⌈w/g⌉, L)`.
    pub fn interval_len(&self) -> u64 {
        (self.g * pbw_models::div_ceil(self.w, self.g)).max(self.l)
    }

    /// Route `intervals` windows of traffic from `adv`.
    pub fn run(&self, adv: &mut dyn Adversary, intervals: u64) -> StabilityTrace {
        self.route(adv, intervals, RouterCfg::default())
    }

    /// [`run`](Self::run) behind a bounded router queue (see
    /// [`AlgorithmB::run_with_backpressure`]).
    pub fn run_with_backpressure(
        &self,
        adv: &mut dyn Adversary,
        intervals: u64,
        bp: BackpressureConfig,
    ) -> StabilityTrace {
        self.route(
            adv,
            intervals,
            RouterCfg {
                bp: Some(bp),
                ..RouterCfg::default()
            },
        )
    }

    fn route(&self, adv: &mut dyn Adversary, intervals: u64, cfg: RouterCfg) -> StabilityTrace {
        let p = self.p;
        let g = self.g;
        let l = self.l;
        run_interval_router_cfg(adv, self.interval_len(), intervals, cfg, move |arrivals| {
            let mut sent = vec![0u64; p];
            let mut recv = vec![0u64; p];
            for &(s, d) in arrivals {
                sent[s] += 1;
                recv[d] += 1;
            }
            let h = sent.iter().chain(recv.iter()).copied().max().unwrap_or(0);
            ((g * h) as f64).max(l as f64)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{
        AqtParams, BurstyAdversary, RandomAdversary, SingleTargetAdversary, SteadyAdversary,
    };

    #[test]
    fn bsp_g_stable_below_beta_threshold() {
        // β = 1/(2g) < 1/g: stable (Theorem 6.5, second part).
        let (p, g) = (64usize, 8u64);
        let params = AqtParams {
            w: 64,
            alpha: 0.0625,
            beta: 0.0625,
        }; // 1/(2g)
        let mut adv = SingleTargetAdversary::new(p, params, 0);
        let router = BspGIntervalRouter {
            p,
            g,
            l: 8,
            w: params.w,
        };
        let trace = router.run(&mut adv, 400);
        assert!(trace.looks_stable(), "growth={}", trace.backlog_growth());
        assert!(trace.max_late_queue() < 32);
    }

    #[test]
    fn bsp_g_unstable_above_beta_threshold() {
        // β = 2/g > 1/g: the single-target adversary defeats BSP(g)
        // (Theorem 6.5, first part).
        let (p, g) = (64usize, 8u64);
        let params = AqtParams {
            w: 64,
            alpha: 0.25,
            beta: 0.25,
        }; // 2/g
        let mut adv = SingleTargetAdversary::new(p, params, 0);
        let router = BspGIntervalRouter {
            p,
            g,
            l: 8,
            w: params.w,
        };
        let trace = router.run(&mut adv, 400);
        assert!(!trace.looks_stable(), "growth={}", trace.backlog_growth());
        // Queue grows roughly linearly: late queue much larger than early.
        assert!(trace.queue_msgs.last().unwrap() > &(trace.queue_msgs[10] + 50));
    }

    #[test]
    fn algorithm_b_stable_at_same_local_rate_that_kills_bsp_g() {
        // The headline of Section 6.2: a local rate β ≫ 1/g that makes
        // BSP(g) unstable is comfortably routed on the BSP(m).
        let (p, m) = (64usize, 8usize); // g = 8
        let params = AqtParams {
            w: 64,
            alpha: 2.0,
            beta: 0.25,
        }; // β = 2/g
        let mut adv = SingleTargetAdversary::new(p, params, 0);
        let algo = AlgorithmB {
            p,
            m,
            w: params.w,
            eps: 0.3,
            seed: 5,
        };
        let trace = algo.run(&mut adv, 400);
        assert!(trace.looks_stable(), "growth={}", trace.backlog_growth());
    }

    #[test]
    fn algorithm_b_stable_near_global_capacity() {
        // α close to (but below) m/(1+ε): stable.
        let (p, m) = (64usize, 8usize);
        let params = AqtParams {
            w: 128,
            alpha: 5.0,
            beta: 0.5,
        };
        let mut adv = SteadyAdversary::new(p, params);
        let algo = AlgorithmB {
            p,
            m,
            w: params.w,
            eps: 0.3,
            seed: 9,
        };
        let trace = algo.run(&mut adv, 300);
        assert!(trace.looks_stable(), "growth={}", trace.backlog_growth());
        assert!(trace.delivered > 0);
    }

    #[test]
    fn algorithm_b_unstable_above_global_capacity() {
        // α > m: no schedule can keep up (Corollary 6.6 analogue for m).
        let (p, m) = (64usize, 8usize);
        let params = AqtParams {
            w: 64,
            alpha: 12.0,
            beta: 0.5,
        };
        let mut adv = SteadyAdversary::new(p, params);
        let algo = AlgorithmB {
            p,
            m,
            w: params.w,
            eps: 0.3,
            seed: 2,
        };
        let trace = algo.run(&mut adv, 300);
        assert!(!trace.looks_stable(), "growth={}", trace.backlog_growth());
    }

    #[test]
    fn bursty_traffic_handled_when_stable() {
        let (p, m) = (32usize, 8usize);
        let params = AqtParams {
            w: 64,
            alpha: 3.0,
            beta: 0.25,
        };
        let mut adv = BurstyAdversary::new(p, params);
        let algo = AlgorithmB {
            p,
            m,
            w: params.w,
            eps: 0.3,
            seed: 3,
        };
        let trace = algo.run(&mut adv, 200);
        assert!(trace.looks_stable(), "growth={}", trace.backlog_growth());
        // Most of what was injected got delivered.
        assert!(trace.delivered as f64 >= 0.9 * trace.injected as f64);
    }

    #[test]
    fn random_traffic_delivery_accounting() {
        let (p, m) = (32usize, 4usize);
        let params = AqtParams {
            w: 32,
            alpha: 2.0,
            beta: 0.25,
        };
        let mut adv = RandomAdversary::new(p, params, 11);
        let algo = AlgorithmB {
            p,
            m,
            w: params.w,
            eps: 0.3,
            seed: 13,
        };
        let trace = algo.run(&mut adv, 200);
        let pending: u64 = *trace.queue_msgs.last().unwrap();
        assert_eq!(trace.delivered + pending, trace.injected);
    }

    #[test]
    fn expected_service_scales_with_w_squared_over_u_shape() {
        // Thm 6.7's service bound is O(w²/u); at fixed utilization the mean
        // *batch* service grows linearly with w (each batch carries αw
        // messages served at rate ~m). Check linear growth in w.
        let (p, m) = (64usize, 8usize);
        let mut services = Vec::new();
        for w in [32u64, 64, 128] {
            let params = AqtParams {
                w,
                alpha: 4.0,
                beta: 0.25,
            };
            let mut adv = SteadyAdversary::new(p, params);
            let algo = AlgorithmB {
                p,
                m,
                w,
                eps: 0.3,
                seed: 1,
            };
            let trace = algo.run(&mut adv, 100);
            services.push(trace.mean_service());
        }
        assert!(services[1] > services[0] * 1.5);
        assert!(services[2] > services[1] * 1.5);
    }

    #[test]
    fn router_emits_one_trace_event_per_batch() {
        use pbw_trace::RecordingSink;
        let (p, m) = (32usize, 4usize);
        let params = AqtParams {
            w: 32,
            alpha: 2.0,
            beta: 0.25,
        };
        let mut adv = RandomAdversary::new(p, params, 11);
        let algo = AlgorithmB {
            p,
            m,
            w: params.w,
            eps: 0.3,
            seed: 13,
        };
        let sink = Arc::new(RecordingSink::new());
        let trace = algo.run_with_sink(&mut adv, 50, sink.clone());
        let events = sink.snapshot();
        // One event per scheduled batch, in routing order.
        assert_eq!(events.len(), trace.service_times.len());
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.source, TraceSource::Router);
            assert_eq!(ev.superstep, i as u64);
            assert_eq!(ev.label, "algorithm-b");
            assert_eq!(ev.params.p, p);
            assert_eq!(ev.params.m, m);
        }
        // The audited batches account for every injected message.
        let traced: u64 = events.iter().map(|e| e.profile.total_messages).sum();
        assert_eq!(traced, trace.injected);
    }

    #[test]
    fn trace_growth_zero_for_short_runs() {
        let mut trace = StabilityTrace::empty(10, 4);
        trace.queue_msgs = vec![0; 4];
        trace.backlog_time = vec![0.0; 4];
        assert_eq!(trace.backlog_growth(), 0.0);
        assert!(trace.looks_stable());
        assert_eq!(trace.mean_service(), 0.0);
    }

    #[test]
    fn delay_percentile_rejects_out_of_range_quantiles() {
        let mut trace = StabilityTrace::empty(10, 4);
        trace.batch_delays = vec![1, 2, 3];
        assert_eq!(trace.delay_percentile(-0.1), None);
        assert_eq!(trace.delay_percentile(1.1), None);
        assert_eq!(trace.delay_percentile(f64::NAN), None);
        assert_eq!(trace.delay_percentile(0.0), Some(1));
        assert_eq!(trace.delay_percentile(1.0), Some(3));
    }

    #[test]
    fn recovery_intervals_measures_post_burst_drain() {
        let mut trace = StabilityTrace::empty(10, 6);
        trace.high_watermark = 10;
        trace.queue_msgs = vec![0, 5, 12, 9, 3, 1];
        // Last overload at index 2; watermark/2 = 5 first reached at index 4.
        assert_eq!(trace.recovery_intervals(), Some(2));

        trace.queue_msgs = vec![0, 5, 4, 3, 2, 1];
        assert_eq!(trace.recovery_intervals(), None); // never overloaded
        trace.queue_msgs = vec![0, 12, 11, 10, 10, 13];
        assert_eq!(trace.recovery_intervals(), None); // never recovered

        trace.high_watermark = 0;
        assert_eq!(trace.recovery_intervals(), None); // no watermark in force
    }

    #[test]
    fn backpressure_bounds_an_overloaded_queue_and_sheds() {
        // α > m: unbounded, the queue grows without bound; bounded, it
        // saturates at the cap and the excess is shed.
        let (p, m) = (64usize, 8usize);
        let params = AqtParams {
            w: 64,
            alpha: 12.0,
            beta: 0.5,
        };
        let bp = BackpressureConfig::bounded(512);

        let mut adv = SteadyAdversary::new(p, params);
        let unbounded = AlgorithmB {
            p,
            m,
            w: params.w,
            eps: 0.3,
            seed: 2,
        }
        .run(&mut adv, 150);
        let mut adv = SteadyAdversary::new(p, params);
        let bounded = AlgorithmB {
            p,
            m,
            w: params.w,
            eps: 0.3,
            seed: 2,
        }
        .run_with_backpressure(&mut adv, 150, bp);

        assert!(unbounded.max_late_queue() > bp.max_queue_msgs);
        assert!(bounded.queue_msgs.iter().all(|&q| q <= bp.max_queue_msgs));
        assert!(bounded.shed_msgs > 0);
        assert!(bounded.overload_intervals > 0);
        // Conservation with shedding.
        let pending = *bounded.queue_msgs.last().unwrap();
        assert_eq!(
            bounded.delivered + pending + bounded.shed_msgs,
            bounded.injected
        );
    }

    #[test]
    fn drop_oldest_policy_keeps_the_queue_bounded_too() {
        let (p, g) = (64usize, 8u64);
        let params = AqtParams {
            w: 64,
            alpha: 0.25,
            beta: 0.25,
        }; // unstable for BSP(g)
        let mut adv = SingleTargetAdversary::new(p, params, 0);
        let router = BspGIntervalRouter {
            p,
            g,
            l: 8,
            w: params.w,
        };
        let bp = BackpressureConfig {
            max_queue_msgs: 256,
            high_watermark: 128,
            policy: ShedPolicy::DropOldest,
        };
        let trace = router.run_with_backpressure(&mut adv, 300, bp);
        assert!(trace.queue_msgs.iter().all(|&q| q <= bp.max_queue_msgs));
        assert!(trace.shed_msgs > 0);
        let pending = *trace.queue_msgs.last().unwrap();
        assert_eq!(trace.delivered + pending + trace.shed_msgs, trace.injected);
    }

    #[test]
    fn zero_drop_rate_routes_identically_to_the_reliable_path() {
        let (p, m) = (32usize, 4usize);
        let params = AqtParams {
            w: 32,
            alpha: 2.0,
            beta: 0.25,
        };
        let mut adv = RandomAdversary::new(p, params, 11);
        let algo = AlgorithmB {
            p,
            m,
            w: params.w,
            eps: 0.3,
            seed: 13,
        };
        let reliable = algo.run(&mut adv, 100);
        let mut adv = RandomAdversary::new(p, params, 11);
        let faultless = algo.run_with_faults(&mut adv, 100, 0.0, 7);
        assert_eq!(reliable.queue_msgs, faultless.queue_msgs);
        assert_eq!(reliable.delivered, faultless.delivered);
        assert_eq!(faultless.retransmitted, 0);
    }

    #[test]
    fn in_transit_loss_erodes_the_stability_margin() {
        // α = 5 against capacity m/(1+ε) ≈ 6.15: stable when reliable, but
        // φ = 0.4 inflates the effective rate to α/(1−φ) ≈ 8.3 > m and the
        // backlog diverges. Retransmissions are seeded and replayable.
        let (p, m) = (64usize, 8usize);
        let params = AqtParams {
            w: 128,
            alpha: 5.0,
            beta: 0.5,
        };
        let algo = AlgorithmB {
            p,
            m,
            w: params.w,
            eps: 0.3,
            seed: 9,
        };

        let mut adv = SteadyAdversary::new(p, params);
        let reliable = algo.run(&mut adv, 300);
        assert!(
            reliable.looks_stable(),
            "growth={}",
            reliable.backlog_growth()
        );

        let mut adv = SteadyAdversary::new(p, params);
        let lossy = algo.run_with_faults(&mut adv, 300, 0.4, 7);
        assert!(lossy.retransmitted > 0);
        assert!(!lossy.looks_stable(), "growth={}", lossy.backlog_growth());

        // Same fault seed ⇒ bit-identical trace.
        let mut adv = SteadyAdversary::new(p, params);
        let replay = algo.run_with_faults(&mut adv, 300, 0.4, 7);
        assert_eq!(lossy.queue_msgs, replay.queue_msgs);
        assert_eq!(lossy.retransmitted, replay.retransmitted);
        assert_eq!(lossy.backlog_time, replay.backlog_time);
    }
}
