//! AQT adversaries and the (w, α, β) compliance checker.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// The restriction triple of Section 6.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AqtParams {
    /// Window length `w`: the rates below bind over every span of `W ≥ w`
    /// consecutive steps.
    pub w: u64,
    /// Global arrival rate `α`: at most `⌈αW⌉` messages per window.
    pub alpha: f64,
    /// Local arrival rate `β`: at most `⌈βW⌉` messages from any source and
    /// at most `⌈βW⌉` to any destination per window.
    pub beta: f64,
}

impl AqtParams {
    /// Per-window global budget `⌊α·w⌋` (we use the floor so generated
    /// traffic is safely compliant for windows of every length ≥ w).
    pub fn window_budget(&self) -> u64 {
        (self.alpha * self.w as f64).floor() as u64
    }

    /// Per-window per-endpoint budget `⌊β·w⌋`.
    pub fn endpoint_budget(&self) -> u64 {
        (self.beta * self.w as f64).floor() as u64
    }
}

/// A source of dynamically arriving messages. The adversary is
/// *non-adaptive*: it may know the routing algorithm but not its random
/// choices, which is why implementations receive no feedback channel.
pub trait Adversary {
    /// Display name.
    fn name(&self) -> &'static str;

    /// The (source, destination) pairs injected at time `t`. Must be called
    /// with strictly increasing `t`.
    fn inject(&mut self, t: u64) -> Vec<(usize, usize)>;

    /// The declared restriction parameters.
    fn params(&self) -> AqtParams;
}

// ---------------------------------------------------------------------------
// Compliance checking
// ---------------------------------------------------------------------------

/// Sliding-window auditor: feeds on the same injection stream and verifies
/// the (w, α, β) restrictions over windows of length `w` and `2w`
/// (violations over longer windows imply violations over these by
/// averaging, up to rounding of `⌈αW⌉`).
#[derive(Debug)]
pub struct ComplianceChecker {
    params: AqtParams,
    p: usize,
    history: VecDeque<Vec<(usize, usize)>>, // last 2w steps
    violations: Vec<String>,
}

impl ComplianceChecker {
    /// Create a checker for `p` processors under `params`.
    pub fn new(p: usize, params: AqtParams) -> Self {
        Self {
            params,
            p,
            history: VecDeque::new(),
            violations: Vec::new(),
        }
    }

    /// Record one step's injections.
    pub fn record(&mut self, msgs: &[(usize, usize)]) {
        self.history.push_back(msgs.to_vec());
        let max_hist = (2 * self.params.w) as usize;
        if self.history.len() > max_hist {
            self.history.pop_front();
        }
        for &win in &[self.params.w, 2 * self.params.w] {
            let win = win as usize;
            if self.history.len() < win {
                continue;
            }
            let slice: Vec<&Vec<(usize, usize)>> = self.history.iter().rev().take(win).collect();
            let total: usize = slice.iter().map(|v| v.len()).sum();
            let cap = (self.params.alpha * win as f64).ceil() as usize;
            if total > cap {
                self.violations
                    .push(format!("window {win}: {total} messages > ⌈αW⌉ = {cap}"));
            }
            let mut per_src = vec![0usize; self.p];
            let mut per_dst = vec![0usize; self.p];
            for v in &slice {
                for &(s, d) in v.iter() {
                    per_src[s] += 1;
                    per_dst[d] += 1;
                }
            }
            let ecap = (self.params.beta * win as f64).ceil() as usize;
            for i in 0..self.p {
                if per_src[i] > ecap {
                    self.violations.push(format!(
                        "window {win}: source {i} sent {} > ⌈βW⌉ = {ecap}",
                        per_src[i]
                    ));
                }
                if per_dst[i] > ecap {
                    self.violations.push(format!(
                        "window {win}: dest {i} got {} > ⌈βW⌉ = {ecap}",
                        per_dst[i]
                    ));
                }
            }
        }
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Whether the stream has been compliant.
    pub fn is_compliant(&self) -> bool {
        self.violations.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Adversaries
// ---------------------------------------------------------------------------

/// Spreads its window budget evenly over steps, sources round-robin,
/// destinations round-robin (maximally balanced compliant traffic).
#[derive(Debug)]
pub struct SteadyAdversary {
    p: usize,
    params: AqtParams,
    carry: f64,
    next_src: usize,
    next_dst: usize,
}

impl SteadyAdversary {
    /// Create for `p` processors.
    pub fn new(p: usize, params: AqtParams) -> Self {
        Self {
            p,
            params,
            carry: 0.0,
            next_src: 0,
            next_dst: 1 % p.max(1),
        }
    }
}

impl Adversary for SteadyAdversary {
    fn name(&self) -> &'static str {
        "steady"
    }

    fn params(&self) -> AqtParams {
        self.params
    }

    fn inject(&mut self, _t: u64) -> Vec<(usize, usize)> {
        // Emit ⌊α⌋..⌈α⌉ messages per step so every window of length W ≥ w
        // carries ≤ ⌊αW⌋ + 1 ≤ ⌈αW⌉ messages.
        self.carry += self.params.alpha;
        let k = self.carry.floor() as usize;
        self.carry -= k as f64;
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let src = self.next_src;
            let mut dst = self.next_dst;
            if dst == src {
                dst = (dst + 1) % self.p;
            }
            out.push((src, dst));
            self.next_src = (self.next_src + 1) % self.p;
            self.next_dst = (self.next_dst + 3) % self.p;
        }
        out
    }
}

/// The Theorem 6.5 instability witness: one message from a *fixed source*
/// every `max(1, ⌈1/β⌉)` steps. Against any algorithm on BSP(g) with
/// `g > 1/β`, the source's queue grows without bound.
#[derive(Debug)]
pub struct SingleTargetAdversary {
    p: usize,
    params: AqtParams,
    src: usize,
    period: u64,
    next_dst: usize,
}

impl SingleTargetAdversary {
    /// Create with the hot source `src`.
    pub fn new(p: usize, params: AqtParams, src: usize) -> Self {
        assert!(src < p);
        let period = (1.0 / params.beta).ceil().max(1.0) as u64;
        Self {
            p,
            params,
            src,
            period,
            next_dst: (src + 1) % p,
        }
    }
}

impl Adversary for SingleTargetAdversary {
    fn name(&self) -> &'static str {
        "single-target"
    }

    fn params(&self) -> AqtParams {
        self.params
    }

    fn inject(&mut self, t: u64) -> Vec<(usize, usize)> {
        if !t.is_multiple_of(self.period) {
            return Vec::new();
        }
        let dst = self.next_dst;
        // Rotate destinations so no destination exceeds its β budget.
        self.next_dst += 1;
        if self.next_dst == self.src {
            self.next_dst += 1;
        }
        self.next_dst %= self.p;
        if self.next_dst == self.src {
            self.next_dst = (self.next_dst + 1) % self.p;
        }
        vec![(self.src, dst)]
    }
}

/// Injects its entire window budget in the first step of every window —
/// the burstiest compliant pattern (worst case for interval routers).
#[derive(Debug)]
pub struct BurstyAdversary {
    p: usize,
    params: AqtParams,
    next_src: usize,
}

impl BurstyAdversary {
    /// Create for `p` processors.
    pub fn new(p: usize, params: AqtParams) -> Self {
        Self {
            p,
            params,
            next_src: 0,
        }
    }
}

impl Adversary for BurstyAdversary {
    fn name(&self) -> &'static str {
        "bursty"
    }

    fn params(&self) -> AqtParams {
        self.params
    }

    fn inject(&mut self, t: u64) -> Vec<(usize, usize)> {
        if !t.is_multiple_of(self.params.w) {
            return Vec::new();
        }
        // Respect both budgets: per-source/destination at most ⌊βw⌋ within
        // the burst; spread round-robin.
        let total = self.params.window_budget() as usize;
        let ecap = self.params.endpoint_budget().max(1) as usize;
        let mut per_src = vec![0usize; self.p];
        let mut per_dst = vec![0usize; self.p];
        let mut out = Vec::with_capacity(total);
        let mut src = self.next_src;
        let mut dst = (src + 1) % self.p;
        let mut guard = 0;
        while out.len() < total && guard < total * self.p * 4 {
            guard += 1;
            if per_src[src] < ecap {
                // find a dst with spare budget
                let mut tries = 0;
                while (per_dst[dst] >= ecap || dst == src) && tries < self.p {
                    dst = (dst + 1) % self.p;
                    tries += 1;
                }
                if per_dst[dst] < ecap && dst != src {
                    per_src[src] += 1;
                    per_dst[dst] += 1;
                    out.push((src, dst));
                }
            }
            src = (src + 1) % self.p;
        }
        self.next_src = src;
        out
    }
}

/// Random compliant traffic: each step draws a Poisson-ish number of
/// messages (Bernoulli thinning of the steady budget) with random compliant
/// endpoints. Budgets are enforced by per-window bookkeeping.
#[derive(Debug)]
pub struct RandomAdversary {
    p: usize,
    params: AqtParams,
    rng: ChaCha8Rng,
    // Remaining budgets for the current window.
    window_left: u64,
    src_left: Vec<u64>,
    dst_left: Vec<u64>,
}

impl RandomAdversary {
    /// Create with a seed.
    pub fn new(p: usize, params: AqtParams, seed: u64) -> Self {
        let mut s = Self {
            p,
            params,
            rng: ChaCha8Rng::seed_from_u64(seed),
            window_left: 0,
            src_left: vec![0; p],
            dst_left: vec![0; p],
        };
        s.reset_window();
        s
    }

    fn reset_window(&mut self) {
        self.window_left = self.params.window_budget();
        let e = self.params.endpoint_budget();
        self.src_left.iter_mut().for_each(|v| *v = e);
        self.dst_left.iter_mut().for_each(|v| *v = e);
    }
}

impl Adversary for RandomAdversary {
    fn name(&self) -> &'static str {
        "random"
    }

    fn params(&self) -> AqtParams {
        self.params
    }

    fn inject(&mut self, t: u64) -> Vec<(usize, usize)> {
        if t.is_multiple_of(self.params.w) {
            self.reset_window();
        }
        let mut out = Vec::new();
        // Expected α messages per step, bounded by remaining budgets.
        let mut expect = self.params.alpha;
        while expect > 0.0 && self.window_left > 0 {
            let fire = if expect >= 1.0 {
                true
            } else {
                self.rng.gen_bool(expect)
            };
            expect -= 1.0;
            if !fire {
                continue;
            }
            // Random compliant endpoints (a few retries, then skip).
            for _ in 0..8 {
                let src = self.rng.gen_range(0..self.p);
                let dst = self.rng.gen_range(0..self.p);
                if src != dst && self.src_left[src] > 0 && self.dst_left[dst] > 0 {
                    self.src_left[src] -= 1;
                    self.dst_left[dst] -= 1;
                    self.window_left -= 1;
                    out.push((src, dst));
                    break;
                }
            }
        }
        out
    }
}

/// On/off traffic: full-rate steady injection during "on" windows, silence
/// during "off" windows. Compliant by construction (silence only helps);
/// stresses routers with duty-cycle transients.
#[derive(Debug)]
pub struct OnOffAdversary {
    inner: SteadyAdversary,
    params: AqtParams,
    on_windows: u64,
    off_windows: u64,
}

impl OnOffAdversary {
    /// Create with `on_windows` of traffic followed by `off_windows` of
    /// silence, repeating.
    pub fn new(p: usize, params: AqtParams, on_windows: u64, off_windows: u64) -> Self {
        assert!(on_windows > 0);
        Self {
            inner: SteadyAdversary::new(p, params),
            params,
            on_windows,
            off_windows,
        }
    }
}

impl Adversary for OnOffAdversary {
    fn name(&self) -> &'static str {
        "on-off"
    }

    fn params(&self) -> AqtParams {
        self.params
    }

    fn inject(&mut self, t: u64) -> Vec<(usize, usize)> {
        let cycle = (self.on_windows + self.off_windows) * self.params.w;
        let phase = t % cycle;
        if phase < self.on_windows * self.params.w {
            self.inner.inject(t)
        } else {
            Vec::new()
        }
    }
}

/// A rotating hot spot: in window `k`, one designated source sends at the
/// full per-endpoint rate; the designation rotates every window. Unlike
/// [`SingleTargetAdversary`] this pattern is *globally* demanding while
/// still local-compliant — the worst realistic shape for interval routers
/// that amortize over sources.
#[derive(Debug)]
pub struct RotatingHotSpotAdversary {
    p: usize,
    params: AqtParams,
    next_dst: usize,
}

impl RotatingHotSpotAdversary {
    /// Create for `p` processors.
    pub fn new(p: usize, params: AqtParams) -> Self {
        assert!(p >= 2);
        Self {
            p,
            params,
            next_dst: 0,
        }
    }
}

impl Adversary for RotatingHotSpotAdversary {
    fn name(&self) -> &'static str {
        "rotating-hotspot"
    }

    fn params(&self) -> AqtParams {
        self.params
    }

    fn inject(&mut self, t: u64) -> Vec<(usize, usize)> {
        let w = self.params.w;
        let window = t / w;
        let src = (window as usize) % self.p;
        // Spread the per-window endpoint budget evenly over the window's
        // steps so sub-window spans stay compliant.
        let budget = self
            .params
            .endpoint_budget()
            .min(self.params.window_budget());
        let step_in_window = t % w;
        // Fire on the first `budget` steps of the window, one message each.
        if step_in_window < budget {
            let mut dst = self.next_dst;
            if dst == src {
                dst = (dst + 1) % self.p;
            }
            self.next_dst = (dst + 1) % self.p;
            vec![(src, dst)]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_checked(adv: &mut dyn Adversary, p: usize, steps: u64) -> (u64, ComplianceChecker) {
        let mut checker = ComplianceChecker::new(p, adv.params());
        let mut total = 0u64;
        for t in 0..steps {
            let msgs = adv.inject(t);
            total += msgs.len() as u64;
            checker.record(&msgs);
        }
        (total, checker)
    }

    #[test]
    fn steady_is_compliant_and_hits_rate() {
        let params = AqtParams {
            w: 32,
            alpha: 4.0,
            beta: 0.25,
        };
        let mut adv = SteadyAdversary::new(64, params);
        let (total, checker) = run_checked(&mut adv, 64, 2048);
        assert!(checker.is_compliant(), "{:?}", checker.violations());
        let rate = total as f64 / 2048.0;
        assert!((rate - 4.0).abs() < 0.2, "rate={rate}");
    }

    #[test]
    fn single_target_is_compliant() {
        let params = AqtParams {
            w: 16,
            alpha: 0.5,
            beta: 0.5,
        };
        let mut adv = SingleTargetAdversary::new(16, params, 3);
        let (total, checker) = run_checked(&mut adv, 16, 1024);
        assert!(checker.is_compliant(), "{:?}", checker.violations());
        // One message every ⌈1/β⌉ = 2 steps.
        assert_eq!(total, 512);
    }

    #[test]
    fn single_target_always_same_source() {
        let params = AqtParams {
            w: 16,
            alpha: 1.0,
            beta: 1.0,
        };
        let mut adv = SingleTargetAdversary::new(8, params, 5);
        for t in 0..100 {
            for (s, d) in adv.inject(t) {
                assert_eq!(s, 5);
                assert_ne!(d, 5);
            }
        }
    }

    #[test]
    fn bursty_is_compliant() {
        let params = AqtParams {
            w: 64,
            alpha: 2.0,
            beta: 0.25,
        };
        let mut adv = BurstyAdversary::new(32, params);
        let (total, checker) = run_checked(&mut adv, 32, 1024);
        assert!(checker.is_compliant(), "{:?}", checker.violations());
        assert!(total > 0);
        // All arrivals in first steps of windows.
        let mut adv2 = BurstyAdversary::new(32, params);
        for t in 0..256 {
            let msgs = adv2.inject(t);
            if t % 64 != 0 {
                assert!(msgs.is_empty());
            }
        }
    }

    #[test]
    fn random_is_compliant() {
        let params = AqtParams {
            w: 32,
            alpha: 3.0,
            beta: 0.5,
        };
        let mut adv = RandomAdversary::new(32, params, 7);
        let (total, checker) = run_checked(&mut adv, 32, 2048);
        assert!(checker.is_compliant(), "{:?}", checker.violations());
        assert!(total > 1000, "total={total}");
    }

    #[test]
    fn checker_catches_global_violation() {
        let params = AqtParams {
            w: 4,
            alpha: 1.0,
            beta: 1.0,
        };
        let mut checker = ComplianceChecker::new(4, params);
        // 3 messages per step for 4 steps = 12 > ⌈1·4⌉ = 4.
        for _ in 0..4 {
            checker.record(&[(0, 1), (1, 2), (2, 3)]);
        }
        assert!(!checker.is_compliant());
    }

    #[test]
    fn checker_catches_endpoint_violation() {
        let params = AqtParams {
            w: 4,
            alpha: 10.0,
            beta: 0.25,
        };
        let mut checker = ComplianceChecker::new(4, params);
        // Source 0 sends every step: 4 > ⌈0.25·4⌉ = 1 per window.
        for _ in 0..4 {
            checker.record(&[(0, 1)]);
        }
        assert!(!checker.is_compliant());
        assert!(checker.violations()[0].contains("source 0"));
    }

    #[test]
    fn on_off_is_compliant_and_silent_when_off() {
        let params = AqtParams {
            w: 32,
            alpha: 2.0,
            beta: 0.25,
        };
        let mut adv = OnOffAdversary::new(32, params, 2, 2);
        let (total, checker) = run_checked(&mut adv, 32, 2048);
        assert!(checker.is_compliant(), "{:?}", checker.violations());
        // Half the cycle is silent: roughly half the steady volume.
        assert!(total > 0);
        let mut adv2 = OnOffAdversary::new(32, params, 1, 1);
        for t in 32..64 {
            assert!(adv2.inject(t).is_empty(), "t={t} should be an off window");
        }
    }

    #[test]
    fn rotating_hotspot_is_compliant_and_rotates() {
        let params = AqtParams {
            w: 32,
            alpha: 1.0,
            beta: 0.25,
        };
        let mut adv = RotatingHotSpotAdversary::new(16, params);
        let mut checker = ComplianceChecker::new(16, params);
        let mut sources = std::collections::BTreeSet::new();
        for t in 0..(32 * 20) {
            let msgs = adv.inject(t);
            for &(s, _) in &msgs {
                sources.insert(s);
            }
            checker.record(&msgs);
        }
        assert!(checker.is_compliant(), "{:?}", checker.violations());
        assert!(
            sources.len() >= 10,
            "hot spot failed to rotate: {sources:?}"
        );
    }

    #[test]
    fn window_budgets() {
        let params = AqtParams {
            w: 100,
            alpha: 2.5,
            beta: 0.1,
        };
        assert_eq!(params.window_budget(), 250);
        assert_eq!(params.endpoint_budget(), 10);
    }
}
