//! PRAM engine benchmarks: the §4.1 h-relation realizations and the
//! list-ranking substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbw_pram::hrelation;
use pbw_pram::primitives::Fidelity;

fn relation(p: usize, h: usize) -> Vec<Vec<(usize, i64)>> {
    (0..p)
        .map(|src| (0..h).map(|k| (((src + k + 1) % p), k as i64)).collect())
        .collect()
}

fn bench_hrelation(c: &mut Criterion) {
    let mut group = c.benchmark_group("hrelation");
    group.sample_size(10);
    for &h in &[4usize, 16] {
        let sends = relation(16, h);
        group.bench_with_input(BenchmarkId::new("teams", h), &sends, |b, s| {
            b.iter(|| hrelation::realize_teams(s))
        });
        group.bench_with_input(BenchmarkId::new("chainsort", h), &sends, |b, s| {
            b.iter(|| hrelation::realize_chainsort(s))
        });
        group.bench_with_input(BenchmarkId::new("dense_charged", h), &sends, |b, s| {
            b.iter(|| hrelation::realize_dense(s, Fidelity::Charged))
        });
    }
    group.finish();
}

fn bench_list_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_ranking");
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        let list = pbw_algos::list_ranking::random_list(n, 1);
        group.bench_with_input(BenchmarkId::new("random_mate", n), &list, |b, l| {
            b.iter(|| pbw_algos::list_ranking::pram_list_ranking(l, 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hrelation, bench_list_ranking);
criterion_main!(benches);
