//! Wall-clock benchmarks of the Section 6.1 schedulers: how fast can the
//! schedule itself be computed and validated, host-side, at realistic
//! message counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pbw_core::schedulers::{EagerSend, OfflineOptimal, Scheduler, UnbalancedSend};
use pbw_core::{evaluate_schedule, workload};
use pbw_models::PenaltyFn;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    for &per in &[64u64, 256] {
        let p = 1024;
        let m = 64;
        let wl = workload::uniform_random(p, per, 1);
        group.bench_with_input(BenchmarkId::new("unbalanced_send", per), &wl, |b, wl| {
            b.iter(|| UnbalancedSend::new(0.2).schedule(black_box(wl), m, 7))
        });
        group.bench_with_input(BenchmarkId::new("offline_optimal", per), &wl, |b, wl| {
            b.iter(|| OfflineOptimal.schedule(black_box(wl), m, 0))
        });
        group.bench_with_input(BenchmarkId::new("eager", per), &wl, |b, wl| {
            b.iter(|| EagerSend.schedule(black_box(wl), m, 0))
        });
        let sched = UnbalancedSend::new(0.2).schedule(&wl, m, 7);
        group.bench_with_input(BenchmarkId::new("evaluate_exp", per), &sched, |b, s| {
            b.iter(|| evaluate_schedule(black_box(s), &wl, m, PenaltyFn::Exponential))
        });
    }
    group.finish();
}

fn bench_skewed(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers_skewed");
    let p = 1024;
    let m = 64;
    let wl = workload::single_hot_sender(p, 65536, 16, 2);
    group.bench_function("unbalanced_send_hot", |b| {
        b.iter(|| UnbalancedSend::new(0.2).schedule(black_box(&wl), m, 3))
    });
    let wl2 = workload::zipf_senders(p, 4096, 1.2, 3);
    group.bench_function("unbalanced_send_zipf", |b| {
        b.iter(|| UnbalancedSend::new(0.2).schedule(black_box(&wl2), m, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_skewed);
criterion_main!(benches);
