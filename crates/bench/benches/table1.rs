//! Wall-clock benchmarks of the Table 1 algorithm simulations (one model
//! each): measures the simulator's throughput on the paper's problems.

use criterion::{criterion_group, criterion_main, Criterion};
use pbw_algos::{broadcast, one_to_all, reduce, sort};
use pbw_models::MachineParams;

fn bench_table1(c: &mut Criterion) {
    let mp = MachineParams::from_gap(512, 16, 16);
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("one_to_all", |b| b.iter(|| one_to_all::run(mp)));
    group.bench_function("broadcast_qsm_m", |b| b.iter(|| broadcast::qsm_m(mp)));
    group.bench_function("broadcast_bsp_g", |b| b.iter(|| broadcast::bsp_g(mp)));
    group.bench_function("ternary_nonreceipt", |b| {
        b.iter(|| broadcast::ternary_nonreceipt(mp, true))
    });
    let bits: Vec<i64> = (0..512).map(|i| (i % 2) as i64).collect();
    group.bench_function("parity_qsm_m", |b| {
        b.iter(|| reduce::qsm_m(mp, &bits, reduce::Op::Xor))
    });
    let keys: Vec<i64> = (0..512).map(|i| ((i * 7919) % 512) as i64).collect();
    group.bench_function("sort_qsm_m", |b| b.iter(|| sort::qsm_m(mp, &keys)));
    group.bench_function("sort_bsp_m", |b| b.iter(|| sort::bsp_m(mp, &keys)));
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
