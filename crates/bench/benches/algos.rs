//! Wall-clock benchmarks of the extension algorithms: prefix sums,
//! collectives, the QSM(m) scheduling exercise and the full Theorem 6.2
//! protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use pbw_core::protocol::unbalanced_send_protocol;
use pbw_core::qsm_sched::{run_unbalanced_reads, RequestBatch};
use pbw_core::workload;
use pbw_models::MachineParams;

fn bench_prefix(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix");
    group.sample_size(10);
    let mp = MachineParams::from_gap(256, 16, 4);
    let xs: Vec<i64> = (0..256 * 16).map(|i| (i % 7) as i64).collect();
    group.bench_function("qsm_m_4k", |b| b.iter(|| pbw_algos::prefix::qsm_m(mp, &xs)));
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(10);
    let mp = MachineParams::from_gap(64, 8, 4);
    group.bench_function("total_exchange_p64", |b| {
        b.iter(|| pbw_algos::collectives::total_exchange(mp))
    });
    group.bench_function("transpose_p64_b4", |b| {
        b.iter(|| pbw_algos::collectives::matrix_transpose(mp, 4, 1))
    });
    group.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.sample_size(10);
    let mp = MachineParams::from_bandwidth(256, 32, 4);
    let wl = workload::uniform_random(256, 32, 1);
    group.bench_function("thm62_end_to_end", |b| {
        b.iter(|| unbalanced_send_protocol(&wl, mp, 0.3, 7))
    });
    let mem: Vec<i64> = (0..128).collect();
    let batch = RequestBatch::new(
        (0..256)
            .map(|pid| (0..8).map(|k| (pid * 7 + k * 13) % 128).collect())
            .collect(),
        128,
    );
    group.bench_function("qsm_unbalanced_reads", |b| {
        b.iter(|| run_unbalanced_reads(mp, &mem, &batch, 0.3, 5))
    });
    group.finish();
}

criterion_group!(benches, bench_prefix, bench_collectives, bench_protocol);
criterion_main!(benches);
