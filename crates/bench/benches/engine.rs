//! Raw simulator throughput: superstep/phase rates of the BSP and QSM
//! engines under rayon, across processor counts and message volumes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbw_models::MachineParams;
use pbw_sim::{BspMachine, QsmMachine};

fn bench_bsp_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp_engine");
    for &p in &[256usize, 1024, 4096] {
        let mp = MachineParams::from_gap(p, 16, 8);
        group.bench_with_input(BenchmarkId::new("ring_superstep", p), &mp, |b, &mp| {
            let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
            b.iter(|| {
                machine.superstep(|pid, s, inbox, out| {
                    *s = s.wrapping_add(inbox.iter().sum::<u64>());
                    out.send((pid + 1) % mp.p, pid as u64);
                })
            })
        });
    }
    group.finish();
}

fn bench_qsm_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsm_engine");
    for &p in &[256usize, 1024, 4096] {
        let mp = MachineParams::from_gap(p, 16, 8);
        group.bench_with_input(BenchmarkId::new("rw_phase", p), &mp, |b, &mp| {
            let mut machine: QsmMachine<u64> = QsmMachine::new(mp, p, |_| 0);
            b.iter(|| {
                machine.phase(|pid, _s, _res, ctx| {
                    ctx.write(pid, pid as i64);
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bsp_engine, bench_qsm_engine);
criterion_main!(benches);
