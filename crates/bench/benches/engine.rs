//! Raw simulator throughput: superstep/phase rates of the BSP and QSM
//! engines under rayon, across processor counts and message volumes —
//! plus an A/B check that the trace layer's default `NullSink` adds no
//! measurable hot-path overhead.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbw_models::MachineParams;
use pbw_sim::{BspMachine, QsmMachine};
use pbw_trace::{NullSink, RecordingSink};

fn bench_bsp_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp_engine");
    for &p in &[256usize, 1024, 4096] {
        let mp = MachineParams::from_gap(p, 16, 8);
        group.bench_with_input(BenchmarkId::new("ring_superstep", p), &mp, |b, &mp| {
            let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
            b.iter(|| {
                machine.superstep(|pid, s, inbox, out| {
                    *s = s.wrapping_add(inbox.iter().sum::<u64>());
                    out.send((pid + 1) % mp.p, pid as u64);
                })
            })
        });
    }
    group.finish();
}

fn bench_qsm_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsm_engine");
    for &p in &[256usize, 1024, 4096] {
        let mp = MachineParams::from_gap(p, 16, 8);
        group.bench_with_input(BenchmarkId::new("rw_phase", p), &mp, |b, &mp| {
            let mut machine: QsmMachine<u64> = QsmMachine::new(mp, p, |_| 0);
            b.iter(|| {
                machine.phase(|pid, _s, _res, ctx| {
                    ctx.write(pid, pid as i64);
                })
            })
        });
    }
    group.finish();
}

/// A/B: the same ring superstep with (a) the default sink — `NullSink`
/// unless a global sink was installed, which this bench never does — and
/// (b) an explicitly attached `NullSink`, versus (c) a live
/// `RecordingSink`. (a) and (b) must be statistically indistinguishable
/// (the zero-cost-when-disabled claim, acceptance ≤ 2%); (c) shows the
/// price of actually recording.
fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    let p = 1024usize;
    let mp = MachineParams::from_gap(p, 16, 8);
    group.bench_function("ring_superstep/default_sink", |b| {
        let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
        b.iter(|| {
            machine.superstep(|pid, s, inbox, out| {
                *s = s.wrapping_add(inbox.iter().sum::<u64>());
                out.send((pid + 1) % mp.p, pid as u64);
            })
        })
    });
    group.bench_function("ring_superstep/null_sink", |b| {
        let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
        machine.set_sink(Arc::new(NullSink));
        b.iter(|| {
            machine.superstep(|pid, s, inbox, out| {
                *s = s.wrapping_add(inbox.iter().sum::<u64>());
                out.send((pid + 1) % mp.p, pid as u64);
            })
        })
    });
    group.bench_function("ring_superstep/recording_sink", |b| {
        let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
        let sink = Arc::new(RecordingSink::new());
        machine.set_sink(sink.clone());
        b.iter(|| {
            // Drain so the recording buffer doesn't grow without bound.
            sink.take();
            machine.superstep(|pid, s, inbox, out| {
                *s = s.wrapping_add(inbox.iter().sum::<u64>());
                out.send((pid + 1) % mp.p, pid as u64);
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bsp_engine,
    bench_qsm_engine,
    bench_trace_overhead
);
criterion_main!(benches);
