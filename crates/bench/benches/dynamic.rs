//! Wall-clock benchmarks of the dynamic routing system (Section 6.2).

use criterion::{criterion_group, criterion_main, Criterion};
use pbw_adversary::mg1::{simulate_mg1, ServiceLaw};
use pbw_adversary::{AlgorithmB, AqtParams, BspGIntervalRouter, SteadyAdversary};

fn bench_dynamic(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic");
    group.sample_size(10);
    let p = 64;
    let params = AqtParams {
        w: 64,
        alpha: 4.0,
        beta: 0.25,
    };
    group.bench_function("algorithm_b_100_intervals", |b| {
        b.iter(|| {
            let mut adv = SteadyAdversary::new(p, params);
            AlgorithmB {
                p,
                m: 8,
                w: 64,
                eps: 0.3,
                seed: 1,
            }
            .run(&mut adv, 100)
        })
    });
    group.bench_function("bsp_g_router_100_intervals", |b| {
        b.iter(|| {
            let mut adv = SteadyAdversary::new(p, params);
            BspGIntervalRouter {
                p,
                g: 8,
                l: 8,
                w: 64,
            }
            .run(&mut adv, 100)
        })
    });
    group.bench_function("mg1_100k_steps", |b| {
        b.iter(|| simulate_mg1(0.2, ServiceLaw { w: 10.0, u: 4.0 }, 100_000, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
