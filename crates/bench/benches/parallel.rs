//! Parallel speedup of the real thread pool behind the `rayon` shim:
//! the same workload pinned to 1-, 4-, and 8-thread pools via
//! `ThreadPool::install`. Two workloads:
//!
//! * `ring_superstep/p1024` — the raw BSP engine hot path (per-processor
//!   compute + injection metering) on a 1024-processor ring.
//! * `faults_sweep/quick` — the full `faults` experiment, whose φ-sweep
//!   and erosion sweep fan sweep points out through `par_iter`.
//!
//! Medians are recorded in `BENCH_parallel.json` at the repo root together
//! with the host's core count — speedup is bounded by physical cores, so a
//! 1-core CI box legitimately reports ≈1×. The core-aware gate in
//! `scripts/bench_gate.sh --parallel` asserts a ≥2× floor at 4 threads on
//! hosts with nproc ≥ 4 and degrades to an overhead ceiling (threads=8 at
//! most 1.25× threads=1) on narrower containers, where the autotuner's
//! sequential cutoff is the mechanism keeping wide pools cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use pbw_models::MachineParams;
use pbw_sim::BspMachine;
use rayon::{ThreadPool, ThreadPoolBuilder};

fn pool(width: usize) -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .expect("shim pool is infallible")
}

fn bench_ring_superstep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_speedup/ring_superstep_p1024");
    group.sample_size(20);
    let p = 1024usize;
    let mp = MachineParams::from_gap(p, 16, 8);
    for width in [1usize, 4, 8] {
        let pool = pool(width);
        group.bench_function(&format!("threads_{width}"), |b| {
            let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
            b.iter(|| {
                pool.install(|| {
                    machine.superstep(|pid, s, inbox, out| {
                        *s = s.wrapping_add(inbox.iter().sum::<u64>());
                        // Some per-processor arithmetic so compute, not
                        // barrier bookkeeping, dominates the superstep.
                        let mut acc = *s ^ pid as u64;
                        for k in 0..256u64 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                        }
                        out.send((pid + 1) % mp.p, acc);
                    })
                })
            })
        });
    }
    group.finish();
}

fn bench_faults_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_speedup/faults_sweep_quick");
    group.sample_size(10);
    for width in [1usize, 4, 8] {
        let pool = pool(width);
        group.bench_function(&format!("threads_{width}"), |b| {
            b.iter(|| pool.install(|| pbw_bench::experiments::faults::faults_seeded(true, 7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ring_superstep, bench_faults_sweep);
criterion_main!(benches);
