//! The superstep delivery hot path, isolated: these scenarios spend their
//! time in the engines' per-superstep bookkeeping (outbox staging, slot
//! resolution, inbox delivery, profile construction), not in user compute,
//! so they are the benches the CI regression gate pins (see
//! `scripts/bench_gate.sh` and `BENCH_engine.json` at the repo root).
//!
//! Scenarios:
//!
//! * `bsp_ring/p1024` — 1024 processors, one message each: the minimal
//!   steady-state superstep, dominated by per-processor fixed costs.
//! * `bsp_fanout4/p1024` — each processor sends 4 messages; the delivery
//!   path handles 4096 payloads per superstep, so this is where buffer
//!   reuse vs. per-superstep reallocation shows up most.
//! * `qsm_rw/p1024` — a QSM phase mixing a read and a write per processor,
//!   exercising request staging, contention audit, and result delivery.
//! * `pram_step/p4096` — a 4096-processor EREW step (one read + one write
//!   each), exercising the PRAM record pool and audit scratch.

use criterion::{criterion_group, criterion_main, Criterion};
use pbw_models::MachineParams;
use pbw_pram::{AccessMode, Pram};
use pbw_sim::{BspMachine, QsmMachine};

fn bench_bsp_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_hotpath");
    group.sample_size(30);
    let p = 1024usize;
    let mp = MachineParams::from_gap(p, 16, 8);
    group.bench_function("bsp_ring/p1024", |b| {
        let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
        b.iter(|| {
            machine.superstep(|pid, s, inbox, out| {
                *s = s.wrapping_add(inbox.iter().sum::<u64>());
                out.send((pid + 1) % mp.p, pid as u64);
            })
        })
    });
    group.bench_function("bsp_fanout4/p1024", |b| {
        let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
        b.iter(|| {
            machine.superstep(|pid, s, inbox, out| {
                *s = s.wrapping_add(inbox.iter().sum::<u64>());
                for k in 1..=4usize {
                    out.send((pid + k) % mp.p, (pid + k) as u64);
                }
            })
        })
    });
    group.bench_function("qsm_rw/p1024", |b| {
        // Reads target the upper half of shared memory, writes the lower
        // half: a location is never both read and written in one phase.
        let mut machine: QsmMachine<u64> = QsmMachine::new(mp, 2 * p, |_| 0);
        b.iter(|| {
            machine.phase(|pid, s, res, ctx| {
                *s = s.wrapping_add(res.iter().map(|r| r.value as u64).sum::<u64>());
                ctx.read(mp.p + (pid + 1) % mp.p);
                ctx.write(pid, pid as i64);
            })
        })
    });
    group.bench_function("pram_step/p4096", |b| {
        let n = 4096usize;
        let mut pram = Pram::new(AccessMode::Erew, n);
        b.iter(|| {
            pram.step(n, |pid, ctx| {
                let v = ctx.read(pid);
                ctx.write(pid, v + 1);
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bsp_ring);
criterion_main!(benches);
