//! How per-superstep engine cost scales with `p` when only a few
//! processors are doing anything — the workloads the active-set execution
//! path (PR 5) exists for. Pinned by the CI regression gate alongside
//! `engine_hotpath` (see `scripts/bench_gate.sh` / `BENCH_engine.json`).
//!
//! Scenarios:
//!
//! * `sparse_1pct/p{1024,32768,1048576}` — a fixed unbalanced workload
//!   (10 senders × 16 messages, ~1% of p at p=1024) run through
//!   `superstep_active` while `p` grows 1024×. The active set and message
//!   count are held constant, so any growth across the sweep is engine
//!   overhead that still scales with `p`; the paper-facing acceptance bar
//!   is < 2× from p=2¹⁰ to p=2²⁰.
//! * `dense_1pct/p{1024,65536}` — the same shape of workload forced down
//!   the dense all-processor path, as the O(p) baseline the README
//!   scaling table contrasts against.
//! * `broadcast_tree/p{1024,65536,262144}` — a complete fan-out-4
//!   broadcast tree (p−1 messages over ⌈log₄ p⌉ supersteps) where each
//!   round's frontier is discovered by the engine itself: only the seed
//!   round declares a sender, relay rounds wake on retained inboxes
//!   alone. The deepest leg pins the wide-frontier regime the bitset
//!   frontier masks exist for.
//! * `density_sweep/p65536/active{1,4,16,64,100}pct` — one dense-entry
//!   superstep whose sender count sweeps the active fraction 1% → 100% in
//!   ×4 steps, so the measured density crossover (`pbw_sim::density`) is
//!   exercised on both sides of its break-even point and the regression
//!   gate pins the whole curve, not one regime.
//! * `qsm_sparse/p65536` — a QSM phase with 16 active processors (one
//!   read + one write each) through `phase_active`, pinning the sparse
//!   contention-audit path.
//! * `sample_sort_exchange/p32` — the steady-state all-to-all bucket
//!   exchange of the sample-sort workload (PR 8): every key re-sent every
//!   superstep through explicit `send_at` slots, pinning the
//!   explicit-slot resolution path the synthetic scenarios never touch.

use criterion::{criterion_group, criterion_main, Criterion};
use pbw_algos::sample_sort::{keyset, KeyDist, SampleSortConfig, SampleSortProgram, Sampling};
use pbw_models::MachineParams;
use pbw_sim::{BspMachine, Outbox, QsmMachine};

/// The fixed unbalanced workload: `SENDERS` processors, each sending
/// `FANOUT` messages to destinations scattered over the whole machine.
const SENDERS: usize = 10;
const FANOUT: usize = 16;

fn sparse_body(p: usize) -> impl Fn(usize, &mut u64, &[u64], &mut Outbox<u64>) {
    move |pid, s, inbox, out| {
        *s = s.wrapping_add(inbox.iter().sum::<u64>());
        if pid < SENDERS {
            for k in 0..FANOUT {
                out.send((pid * 97 + k * 31 + 1) % p, (pid + k) as u64);
            }
        }
    }
}

fn bench_sparse_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    group.sample_size(15);
    for &p in &[1usize << 10, 1 << 15, 1 << 20] {
        let mp = MachineParams::from_gap(p, 16, 8);
        let active: Vec<usize> = (0..SENDERS).collect();
        group.bench_function(&format!("sparse_1pct/p{p}"), |b| {
            let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
            let body = sparse_body(p);
            b.iter(|| machine.superstep_active(&active, &body))
        });
    }
    for &p in &[1usize << 10, 1 << 16] {
        let mp = MachineParams::from_gap(p, 16, 8);
        group.bench_function(&format!("dense_1pct/p{p}"), |b| {
            let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
            let body = sparse_body(p);
            b.iter(|| machine.superstep(&body))
        });
    }
    for &p in &[1usize << 10, 1 << 16, 1 << 18] {
        let mp = MachineParams::from_gap(p, 16, 8);
        // Relay rounds remaining after the seed: one per tree level whose
        // first node (0, 1, 5, 21, …) still has an in-range child.
        let rounds = {
            let mut first = 0usize;
            let mut levels = 0u32;
            while 4 * first + 1 < p {
                first = 4 * first + 1;
                levels += 1;
            }
            levels.saturating_sub(1)
        };
        group.bench_function(&format!("broadcast_tree/p{p}"), |b| {
            let mut machine: BspMachine<(), u32> = BspMachine::new(mp, |_| ());
            let seed = move |pid: usize, _s: &mut (), _in: &[u32], out: &mut Outbox<u32>| {
                if pid == 0 {
                    for c in 1..=4usize {
                        if c < p {
                            out.send(c, 0);
                        }
                    }
                }
            };
            let relay = move |pid: usize, _s: &mut (), inbox: &[u32], out: &mut Outbox<u32>| {
                if pid != 0 && !inbox.is_empty() {
                    for c in 1..=4usize {
                        let child = 4 * pid + c;
                        if child < p {
                            out.send(child, 0);
                        }
                    }
                }
            };
            b.iter(|| {
                machine.superstep_active(&[0], seed);
                for _ in 0..rounds {
                    machine.superstep_active(&[], relay);
                }
            })
        });
    }
    {
        let p = 1usize << 16;
        let mp = MachineParams::from_gap(p, 16, 8);
        let active: Vec<usize> = (0..16).map(|i| i * (p / 16)).collect();
        group.bench_function(&format!("qsm_sparse/p{p}"), |b| {
            let mut machine: QsmMachine<u64> = QsmMachine::new(mp, 2 * p, |_| 0);
            b.iter(|| {
                machine.phase_active(&active, |pid, s, res, ctx| {
                    *s = s.wrapping_add(res.iter().map(|r| r.value as u64).sum::<u64>());
                    ctx.read(p + (pid + 1) % p);
                    ctx.write(pid, pid as i64);
                })
            })
        });
    }
    {
        // The same grid point as `reproduce sorting` (p = 32, n/p = 64,
        // n = 2048 keys moved per iteration), held at the exchange
        // superstep: splitters installed, every send an explicit
        // `send_at`, buffers at their high-water marks.
        let p = 32;
        let per = 64;
        let mp = MachineParams::from_gap(p, 4, 8);
        let cfg = SampleSortConfig {
            ratio: 8,
            sampling: Sampling::Seeded,
            seed: 7,
        };
        let prog = SampleSortProgram::new(p, keyset(KeyDist::Uniform, p * per, 7), cfg);
        group.bench_function(&format!("sample_sort_exchange/p{p}"), |b| {
            let mut machine = prog.machine(mp);
            for _ in 0..prog.exchange_step() {
                prog.apply_next(&mut machine, false);
            }
            b.iter(|| prog.step_exchange(&mut machine))
        });
    }
    group.finish();
}

fn bench_density_sweep(c: &mut Criterion) {
    // One dense-entry superstep per iteration; the engine's measured
    // crossover (`pbw_sim::density`) decides per superstep whether the
    // delivery side walks all p processors or just the discovered senders.
    // Sweeping the active fraction 1% → 100% in ×4 steps pins both regimes
    // and the neighborhood of the break-even point.
    let mut group = c.benchmark_group("density_sweep");
    group.sample_size(10);
    let p = 1usize << 16;
    let mp = MachineParams::from_gap(p, 16, 8);
    const SWEEP_FANOUT: usize = 4;
    for &pct in &[1usize, 4, 16, 64, 100] {
        let senders = (p * pct / 100).max(1);
        group.bench_function(&format!("p{p}/active{pct}pct"), |b| {
            let mut machine: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
            let body = move |pid: usize, s: &mut u64, inbox: &[u64], out: &mut Outbox<u64>| {
                *s = s.wrapping_add(inbox.iter().sum::<u64>());
                if pid < senders {
                    for k in 0..SWEEP_FANOUT {
                        out.send((pid * 97 + k * 31 + 1) % p, (pid + k) as u64);
                    }
                }
            };
            b.iter(|| machine.superstep(body))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparse_sweep, bench_density_sweep);
criterion_main!(benches);
