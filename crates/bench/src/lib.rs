//! # pbw-bench
//!
//! The experiment harness: every table and quantitative claim of the paper
//! as a reproducible, parameterized experiment. The `reproduce` binary
//! prints paper-shaped tables with a *paper* (predicted-bound) column next
//! to the *measured* (simulator) column; `EXPERIMENTS.md` records the
//! outputs.
//!
//! Experiment ids (match DESIGN.md):
//!
//! | id | paper source |
//! |---|---|
//! | `table1` | Table 1 separations (one-to-all, broadcast, parity/summation, list ranking, sorting) |
//! | `broadcast-lb` | Theorem 4.1 + the §4.2 ternary non-receipt algorithm |
//! | `unbalanced-send` | Theorem 6.2 |
//! | `consecutive-send` | Theorem 6.3 |
//! | `granular-send` | Theorem 6.4 |
//! | `flits` | §6.1 long-message variant |
//! | `overhead` | §6.1 LogP-`o` variant |
//! | `gvsm-routing` | Proposition 6.1 vs. the global lower bound |
//! | `dynamic` | Theorems 6.5/6.7 stability phase diagram |
//! | `mg1` | Claim 6.8 |
//! | `cr-sim` | Theorem 5.1 |
//! | `leader` | Theorem 5.2 / Lemma 5.3 (incl. the cell-width sweep) |
//! | `hrel-crcw` | §4.1 h-relation realization |
//! | `hrel-randomized` | §4.1 randomized O(h + lg* p) realization |
//! | `penalty-ablation` | §2 self-scheduling metric & the cost of obliviousness |
//! | `whp-phase` | Thm 6.2's e^{−Ω(ε²m)} failure probability at finite sizes |
//! | `preamble` | the τ preamble (Section 6 prerequisite) |
//! | `qsm-exercise` | the QSM(m) scheduling results ("exercise left to the reader") |
//! | `collectives` | balanced collectives: the no-imbalance converse |
//! | `list-ranking-ablation` | conversion vs pointer jumping |
//! | `sorting-ablation` | sample sort vs block bitonic under both metrics |
//! | `sensitivity-audit` | Claim 4.2 mechanized against profiled runs |

pub mod experiments;
pub mod table;

pub use table::Table;
