//! Reproduce the paper's tables and quantitative claims.
//!
//! ```text
//! reproduce [--quick] [--trace FILE] [--seed N] [EXPERIMENT ...]
//! ```
//!
//! With no experiment ids, runs the whole suite (see `reproduce --list`).
//! `--quick` shrinks machine sizes and sweep grids (used by CI).
//! `--trace FILE` streams one JSON-lines event per simulated superstep /
//! routed batch to `FILE` (see `pbw-trace` for the schema).
//! `--seed N` sets the fault seed for the seeded experiments (`faults`);
//! equal seeds replay bit-identically — CI diffs two traced runs.

use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--list") {
        for id in pbw_bench::experiments::ALL {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: reproduce [--quick] [--list] [--trace FILE] [--seed N] [EXPERIMENT ...]");
        println!("experiments: {}", pbw_bench::experiments::ALL.join(", "));
        return ExitCode::SUCCESS;
    }
    let mut trace_path: Option<String> = None;
    let mut seed = 7u64;
    let mut requested: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--trace" {
            match it.next() {
                Some(path) => trace_path = Some(path.clone()),
                None => {
                    eprintln!("--trace requires a file argument");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--seed" {
            match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed requires an unsigned integer argument");
                    return ExitCode::FAILURE;
                }
            }
        } else if !a.starts_with("--") {
            requested.push(a.as_str());
        }
    }
    let trace_sink = match trace_path.as_deref() {
        Some(path) => match pbw_trace::JsonlSink::create(path) {
            Ok(sink) => {
                let sink = Arc::new(sink);
                pbw_trace::set_global_sink(sink.clone());
                Some(sink)
            }
            Err(e) => {
                eprintln!("cannot open trace file '{path}': {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let ids: Vec<&str> = if requested.is_empty() {
        pbw_bench::experiments::ALL.to_vec()
    } else {
        requested
    };
    for id in ids {
        match pbw_bench::experiments::run_seeded(id, quick, seed) {
            Some(report) => {
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment '{id}' (try --list)");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(sink) = trace_sink {
        pbw_trace::clear_global_sink();
        if let Err(e) = sink.flush() {
            eprintln!("error flushing trace file: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
