//! Reproduce the paper's tables and quantitative claims.
//!
//! ```text
//! reproduce [--quick] [EXPERIMENT ...]
//! ```
//!
//! With no experiment ids, runs the whole suite (see `reproduce --list`).
//! `--quick` shrinks machine sizes and sweep grids (used by CI).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--list") {
        for id in pbw_bench::experiments::ALL {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: reproduce [--quick] [--list] [EXPERIMENT ...]");
        println!("experiments: {}", pbw_bench::experiments::ALL.join(", "));
        return ExitCode::SUCCESS;
    }
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ids: Vec<&str> = if requested.is_empty() {
        pbw_bench::experiments::ALL.to_vec()
    } else {
        requested
    };
    for id in ids {
        match pbw_bench::experiments::run(id, quick) {
            Some(report) => {
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment '{id}' (try --list)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
