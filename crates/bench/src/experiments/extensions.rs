//! Extension experiments: artifacts the paper states without tables
//! (the QSM(m) "exercise", Claim 4.2's audit, the balanced-collective
//! non-separation, and the randomized h-relation realization).

use crate::table::{fmt, Table};
use pbw_algos::collectives;
use pbw_core::qsm_sched::{run_unbalanced_reads, RequestBatch};
use pbw_models::MachineParams;
use pbw_pram::hrelation::check_delivery;
use pbw_pram::hrelation_rand::realize_randomized;
use pbw_sim::Word;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The QSM(m) scheduling exercise: unbalanced shared-memory read batches
/// land within (1+ε) of `max(n/m, x̄, κ)`.
pub fn qsm_exercise(quick: bool) -> String {
    let p = if quick { 256 } else { 1024 };
    let m = p / 8;
    let msize = 256;
    let params = MachineParams::from_bandwidth(p, m, 4);
    let mem: Vec<Word> = (0..msize).map(|i| 9000 + i as Word).collect();
    let mut out = String::new();
    out.push_str(&format!(
        "== QSM(m) unbalanced access scheduling (the paper's reader exercise): p = {p}, m = {m} ==\n"
    ));
    let mut t = Table::new(vec!["batch", "n", "x̄", "κ", "lower", "measured", "ratio"]);
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let batches: Vec<(&str, RequestBatch)> = vec![
        (
            "uniform",
            RequestBatch::new(
                (0..p)
                    .map(|_| (0..16).map(|_| rng.gen_range(0..msize)).collect())
                    .collect(),
                msize,
            ),
        ),
        ("hot-requester", {
            let mut reqs: Vec<Vec<usize>> = (0..p)
                .map(|_| (0..4).map(|_| rng.gen_range(0..msize)).collect())
                .collect();
            reqs[0] = (0..(8 * p)).map(|_| rng.gen_range(0..msize)).collect();
            RequestBatch::new(reqs, msize)
        }),
        ("hot-location", {
            RequestBatch::new(
                (0..p)
                    .map(|_| {
                        (0..8)
                            .map(|_| {
                                if rng.gen_bool(0.5) {
                                    0
                                } else {
                                    rng.gen_range(0..msize)
                                }
                            })
                            .collect()
                    })
                    .collect(),
                msize,
            )
        }),
    ];
    for (name, batch) in batches {
        let r = run_unbalanced_reads(params, &mem, &batch, 0.3, 7);
        assert!(r.ok, "{name}");
        t.row(vec![
            name.to_string(),
            batch.n().to_string(),
            batch.xbar().to_string(),
            batch.contention().to_string(),
            fmt(r.lower),
            fmt(r.cost),
            fmt(r.ratio),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(Same window trick, shared-memory edition: within (1+ε) of max(n/m, x̄, κ);\n when one location is hot, κ binds and no schedule can do better.)\n");
    out
}

/// Balanced collectives: total exchange and matrix transpose show **no**
/// local-vs-global separation — the converse of the headline claim.
pub fn collectives_exp(quick: bool) -> String {
    let mut out = String::new();
    out.push_str("== Balanced collectives: no imbalance ⇒ no separation (§1/§3) ==\n");
    let mut t = Table::new(vec!["collective", "p", "BSP(m)", "BSP(g)", "separation"]);
    let sizes: &[usize] = if quick { &[64] } else { &[64, 128, 256] };
    for &p in sizes {
        let mp = MachineParams::from_gap(p, 8, 4);
        let (te, tes) = collectives::total_exchange(mp);
        assert!(te.ok);
        t.row(vec![
            "total-exchange".to_string(),
            p.to_string(),
            fmt(tes.bsp_m_exp),
            fmt(tes.bsp_g),
            fmt(tes.bsp_separation()),
        ]);
        let tr = collectives::matrix_transpose(mp, 4, 1);
        assert!(tr.measured.ok);
        t.row(vec![
            "transpose(b=4)".to_string(),
            p.to_string(),
            fmt(tr.summary.bsp_m_exp),
            fmt(tr.summary.bsp_g),
            fmt(tr.summary.bsp_separation()),
        ]);
        let (ga, gs) = collectives::gather(mp);
        assert!(ga.ok);
        t.row(vec![
            "gather".to_string(),
            p.to_string(),
            fmt(gs.bsp_m_exp),
            fmt(gs.bsp_g),
            fmt(gs.bsp_separation()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(Balanced traffic: separation ≈ 1 for total exchange/transpose. Gather is the\n one-to-all pattern mirrored — its Θ(g) separation comes back, because a single\n hot *endpoint* is exactly the imbalance the paper's bound describes.)\n");
    out
}

/// The randomized O(h + lg* p) h-relation realization.
pub fn hrel_randomized(quick: bool) -> String {
    let p = if quick { 8 } else { 16 };
    let mut out = String::new();
    out.push_str("== Randomized h-relation realization on CRCW: O(h + lg* p) (§4.1) ==\n");
    let mut t = Table::new(vec!["h", "time", "time/h", "deterministic teams time/h"]);
    let hs: Vec<usize> = if quick {
        vec![2, 8, 32]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    };
    for h in hs {
        let sends: Vec<Vec<(usize, Word)>> = (0..p)
            .map(|src| (0..h).map(|k| (((src + k + 1) % p), k as Word)).collect())
            .collect();
        let rnd = realize_randomized(&sends, 3);
        assert!(check_delivery(&sends, &rnd));
        let det = pbw_pram::hrelation::realize_teams(&sends);
        t.row(vec![
            h.to_string(),
            rnd.time.to_string(),
            fmt(rnd.time as f64 / h as f64),
            fmt(det.time as f64 / h as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(time/h converges to a small constant as the lg* additive term amortizes.)\n");
    out
}

/// Ablation: list ranking via the work-optimal PRAM conversion vs. direct
/// pointer jumping on the BSP(m) — linear vs. superlinear growth in `n`.
pub fn list_ranking_ablation(quick: bool) -> String {
    use pbw_algos::list_ranking::{bsp_m_pointer_jumping, converted, random_list};
    let params = MachineParams::from_bandwidth(64, 16, 4);
    let mut out = String::new();
    out.push_str(
        "== Ablation: list ranking — PRAM conversion vs direct pointer jumping (BSP(m)) ==\n",
    );
    let mut t = Table::new(vec![
        "n",
        "conversion (QSM(m))",
        "conversion (BSP(m))",
        "pointer jumping (BSP(m))",
        "pj rounds",
    ]);
    let sizes: &[usize] = if quick {
        &[1024, 4096]
    } else {
        &[1024, 2048, 4096, 8192, 16384]
    };
    for &n in sizes {
        let (q, b) = converted(params, n, 3);
        assert!(q.ok && b.ok);
        let pj = bsp_m_pointer_jumping(params, &random_list(n, 3));
        assert!(pj.ok);
        t.row(vec![
            n.to_string(),
            fmt(q.time),
            fmt(b.time),
            fmt(pj.time),
            pj.rounds.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(The conversion column doubles with n — Θ(n/m); pointer jumping grows by a bit\n more than 2× per doubling — the lg n factor. At simulable n the conversion's\n work constant (~28 engine-ops per node) still dominates: asymptotics vs\n constants, reported as measured.)\n");
    out
}

/// The Claim 4.2 sensitivity audit applied to profiled broadcast runs.
pub fn sensitivity_audit(quick: bool) -> String {
    use pbw_algos::sensitivity::{audit_broadcast, profiled_ternary, profiled_tree};
    let mut out = String::new();
    out.push_str("== Claim 4.2 sensitivity audit of broadcast executions (Thm 4.1 machinery) ==\n");
    let mut t = Table::new(vec![
        "algorithm",
        "p",
        "Π(x_t+x̄_t+1)",
        "≥ p?",
        "instance lower",
        "Thm 4.1 lower",
    ]);
    let configs: &[(usize, u64, u64)] = if quick {
        &[(243, 27, 8)]
    } else {
        &[(243, 27, 8), (729, 27, 27), (2048, 8, 32)]
    };
    for &(p, g, l) in configs {
        let mp = MachineParams::from_gap(p, g, l);
        let tern = audit_broadcast(
            mp,
            &profiled_ternary(mp, false),
            &profiled_ternary(mp, true),
        );
        assert!(tern.reaches_p);
        t.row(vec![
            "ternary non-receipt".to_string(),
            p.to_string(),
            tern.product.to_string(),
            "yes".to_string(),
            fmt(tern.instance_lower),
            fmt(tern.theorem_lower),
        ]);
        let tree = audit_broadcast(mp, &profiled_tree(mp, false), &profiled_tree(mp, true));
        assert!(tree.reaches_p);
        t.row(vec![
            "fan-out tree".to_string(),
            p.to_string(),
            tree.product.to_string(),
            "yes".to_string(),
            fmt(tree.instance_lower),
            fmt(tree.theorem_lower),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(Every terminating broadcast's sensitivity product covers p — the mechanized\n necessary condition behind Theorem 4.1; the ternary protocol meets it with the\n minimum possible per-round factor 3, one message per processor.)\n");
    out
}

/// Ablation: native algorithms per model — block bitonic (the g-model's
/// natural sorter, perfectly balanced) vs sample sort (designed for the
/// global budget), both executed and priced under both metrics.
pub fn sorting_ablation(quick: bool) -> String {
    use pbw_algos::{bitonic, sort};
    use rand::{Rng, SeedableRng};
    let mut out = String::new();
    out.push_str("== Ablation: sorting — block bitonic vs sample sort under both metrics ==\n");
    let mut t = Table::new(vec![
        "n",
        "bitonic BSP(g)",
        "bitonic BSP(m)",
        "sample BSP(g)",
        "sample BSP(m)",
        "sample advantage (m-model)",
    ]);
    let sizes: &[usize] = if quick { &[16] } else { &[8, 16, 32] };
    for &per in sizes {
        let mp = MachineParams::from_gap(64, 8, 4);
        let n = 64 * per;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(per as u64);
        let keys: Vec<Word> = (0..n).map(|_| rng.gen_range(-100_000..100_000)).collect();
        let (bit, bsum) = bitonic::bsp_block_sort(mp, &keys);
        let (smp, ssum) = sort::bsp_m_detailed(mp, &keys);
        assert!(bit.ok && smp.ok);
        t.row(vec![
            n.to_string(),
            fmt(bsum.bsp_g),
            fmt(bsum.bsp_m_exp),
            fmt(ssum.bsp_g),
            fmt(ssum.bsp_m_exp),
            fmt(bsum.bsp_m_exp / ssum.bsp_m_exp),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(Bitonic's communication is perfectly balanced, so the global budget buys it\n nothing — while sample sort, which moves each key O(1) times through a\n staggered window, exploits it. The design lesson of Table 1's sorting row.)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qsm_exercise_runs() {
        let r = qsm_exercise(true);
        assert!(r.contains("hot-location"));
    }

    #[test]
    fn collectives_show_no_separation_when_balanced() {
        let r = collectives_exp(true);
        // Every total-exchange row's separation ≈ 1.
        for line in r.lines().filter(|l| l.starts_with("total-exchange")) {
            let sep: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
            assert!((sep - 1.0).abs() < 0.1, "{line}");
        }
    }

    #[test]
    fn hrel_randomized_runs() {
        assert!(hrel_randomized(true).contains("time/h"));
    }

    #[test]
    fn ablation_runs() {
        assert!(list_ranking_ablation(true).contains("pointer jumping"));
    }

    #[test]
    fn sorting_ablation_runs() {
        let r = sorting_ablation(true);
        assert!(r.contains("bitonic"));
    }

    #[test]
    fn sensitivity_audit_runs() {
        let r = sensitivity_audit(true);
        assert!(r.contains("ternary non-receipt"));
        assert!(r.contains("yes"));
    }
}
