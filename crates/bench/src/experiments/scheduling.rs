//! Experiments for the Section 6.1 scheduling algorithms (Theorems
//! 6.2–6.4, the flit and overhead variants, and the §2 penalty ablation).

use crate::table::{fmt, Table};
use pbw_core::flits::{evaluate_overhead_schedule, OverheadSend, UnbalancedFlitSend};
use pbw_core::schedule::to_profile;
use pbw_core::schedulers::{
    xbar_small, EagerSend, OfflineOptimal, Scheduler, UnbalancedConsecutiveSend,
    UnbalancedGranularSend, UnbalancedSend,
};
use pbw_core::{evaluate_schedule, workload, Workload};
use pbw_models::CostModel;
use pbw_models::{bounds, PenaltyFn, SelfSchedulingBspM, SuperstepProfile};

fn skew_suite(p: usize, quick: bool) -> Vec<(&'static str, Workload)> {
    let mut v = vec![
        ("uniform", workload::uniform_random(p, 64, 1)),
        (
            "hot-sender",
            workload::single_hot_sender(p, (p as u64) * 16, 8, 2),
        ),
        ("zipf-1.2", workload::zipf_senders(p, 512, 1.2, 3)),
    ];
    if !quick {
        v.push(("bimodal", workload::bimodal(p, 0.1, 512, 8, 4)));
        v.push(("permutation", workload::permutation(p, 5)));
        v.push(("total-exchange", workload::total_exchange(p)));
    }
    v
}

/// Theorem 6.2: Unbalanced-Send vs the offline optimum and the oblivious
/// baseline, under the exponential penalty.
pub fn unbalanced_send(quick: bool) -> String {
    let p = if quick { 512 } else { 2048 };
    let m = p / 4; // ε²m must be large for the w.h.p. no-overload event
    let eps = 0.3;
    let mut out = String::new();
    out.push_str(&format!(
        "== Unbalanced-Send (Thm 6.2): p = {p}, m = {m}, ε = {eps} (exp penalty) ==\n"
    ));
    let mut t = Table::new(vec![
        "workload",
        "n",
        "h",
        "opt lower",
        "offline",
        "U-Send",
        "eager",
        "U-Send/opt",
        "max slot load",
        "≤m?",
    ]);
    for (name, wl) in skew_suite(p, quick) {
        let opt = evaluate_schedule(
            &OfflineOptimal.schedule(&wl, m, 0),
            &wl,
            m,
            PenaltyFn::Exponential,
        );
        let us = evaluate_schedule(
            &UnbalancedSend::new(eps).schedule(&wl, m, 7),
            &wl,
            m,
            PenaltyFn::Exponential,
        );
        let eager = evaluate_schedule(
            &EagerSend.schedule(&wl, m, 0),
            &wl,
            m,
            PenaltyFn::Exponential,
        );
        t.row(vec![
            name.to_string(),
            us.n.to_string(),
            us.h.to_string(),
            fmt(us.opt_lower),
            fmt(opt.model_time),
            fmt(us.model_time),
            fmt(eager.model_time),
            fmt(us.ratio_to_opt),
            us.max_slot_load.to_string(),
            if us.no_slot_exceeds_m {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(U-Send stays within (1+ε) of the offline optimum; the oblivious eager\n schedule pays the exponential overload penalty.)\n");
    out
}

/// Theorem 6.3: the consecutive variant and its additive `x̄'` term.
pub fn consecutive_send(quick: bool) -> String {
    let p = if quick { 512 } else { 2048 };
    let m = p / 4;
    let eps = 0.3;
    let mut out = String::new();
    out.push_str(&format!(
        "== Unbalanced-Consecutive-Send (Thm 6.3): p = {p}, m = {m}, ε = {eps} ==\n"
    ));
    let mut t = Table::new(vec![
        "workload",
        "makespan",
        "target (1+ε)n/m + x̄'",
        "within?",
        "max slot load",
        "≤m?",
    ]);
    for (name, wl) in skew_suite(p, quick) {
        let sched = UnbalancedConsecutiveSend::new(eps).schedule(&wl, m, 11);
        let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        let target = (1.0 + eps) * wl.n_flits() as f64 / m as f64 + xbar_small(&wl, m, eps) as f64;
        let target = target.max(wl.xbar() as f64);
        t.row(vec![
            name.to_string(),
            fmt(cost.makespan as f64),
            fmt(target),
            if (cost.makespan as f64) <= target + 2.0 {
                "yes".into()
            } else {
                "NO".to_string()
            },
            cost.max_slot_load.to_string(),
            if cost.no_slot_exceeds_m {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Theorem 6.4: the granular variant — window `c·n/m`, grid `t' = n/p`.
pub fn granular_send(quick: bool) -> String {
    let p = if quick { 512 } else { 2048 };
    let m = p / 4;
    let c = 3.0;
    let mut out = String::new();
    out.push_str(&format!(
        "== Unbalanced-Granular-Send (Thm 6.4): p = {p}, m = {m}, c = {c} ==\n"
    ));
    let mut t = Table::new(vec![
        "workload",
        "makespan",
        "c·n/m + x̄",
        "within?",
        "max slot load",
        "≤m?",
    ]);
    for (name, wl) in skew_suite(p, quick) {
        let sched = UnbalancedGranularSend::new(c).schedule(&wl, m, 13);
        let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        let target = c * wl.n_flits() as f64 / m as f64 + wl.xbar() as f64;
        t.row(vec![
            name.to_string(),
            fmt(cost.makespan as f64),
            fmt(target),
            if (cost.makespan as f64) <= target {
                "yes".into()
            } else {
                "NO".to_string()
            },
            cost.max_slot_load.to_string(),
            if cost.no_slot_exceeds_m {
                "yes".into()
            } else {
                "NO".to_string()
            },
        ]);
    }
    out.push_str(&t.render());
    out
}

/// The §6.1 long-message variant: flits in consecutive steps, additive ℓ̂.
pub fn flits(quick: bool) -> String {
    let p = if quick { 256 } else { 1024 };
    let m = p / 16;
    let eps = 0.25;
    let mut out = String::new();
    out.push_str(&format!(
        "== Long messages (flit-contiguous): p = {p}, m = {m}, ε = {eps} ==\n"
    ));
    let mut t = Table::new(vec![
        "length law",
        "n flits",
        "ℓ̂",
        "makespan",
        "(1+ε)n/m + ℓ̂ (+x̄ if huge)",
        "exp slowdown c_m/makespan",
    ]);
    let laws: Vec<(&str, Workload)> = vec![
        ("fixed-4", {
            let base = workload::uniform_random(p, 16, 21);
            Workload::new(
                base.sends()
                    .iter()
                    .map(|l| {
                        l.iter()
                            .map(|msg| workload::Msg {
                                dest: msg.dest,
                                len: 4,
                            })
                            .collect()
                    })
                    .collect(),
            )
        }),
        ("geometric-8", workload::variable_length(p, 16, 8.0, 22)),
        ("heavy-tail", {
            // A few very long messages on top of a geometric base.
            let mut wl = workload::variable_length(p, 12, 4.0, 23).sends().to_vec();
            wl[0].push(workload::Msg { dest: 1, len: 256 });
            wl[p / 2].push(workload::Msg { dest: 0, len: 512 });
            Workload::new(wl)
        }),
    ];
    for (name, wl) in laws {
        let sched = UnbalancedFlitSend::new(eps).schedule(&wl, m, 31);
        let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        let w = (1.0 + eps) * wl.n_flits() as f64 / m as f64;
        let target = (w + wl.lhat() as f64).max(wl.xbar() as f64);
        // Mild overloads are possible at finite m; what matters is that the
        // exponential penalty stays a (1+o(1)) factor: c_m / makespan.
        let slowdown = cost.c_m / cost.makespan.max(1) as f64;
        t.row(vec![
            name.to_string(),
            wl.n_flits().to_string(),
            wl.lhat().to_string(),
            fmt(cost.makespan as f64),
            fmt(target),
            fmt(slowdown),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// The §6.1 LogP-overhead variant.
pub fn overhead(quick: bool) -> String {
    let p = if quick { 256 } else { 1024 };
    let m = p / 16;
    let eps = 0.25;
    let mut out = String::new();
    out.push_str(&format!(
        "== Start-up overhead o (LogP-style): p = {p}, m = {m}, ε = {eps} ==\n"
    ));
    let mut t = Table::new(vec![
        "o",
        "makespan",
        "target (1+ε)(1+o/ℓ̄)n/m + ℓ̂ + o",
        "ratio",
        "exp slowdown",
    ]);
    let os: Vec<u64> = if quick {
        vec![0, 4, 16]
    } else {
        vec![0, 1, 4, 16, 64]
    };
    let wl = workload::variable_length(p, 16, 6.0, 33);
    for o in os {
        let sched = OverheadSend::new(eps, o).schedule(&wl, m, 17);
        let cost = evaluate_overhead_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        let target =
            bounds::overhead_send_target(wl.n_flits(), m, wl.lbar(), wl.lhat(), o, eps, p, 1);
        let slowdown = cost.c_m / cost.makespan.max(1) as f64;
        t.row(vec![
            o.to_string(),
            fmt(cost.makespan as f64),
            fmt(target),
            fmt(cost.makespan as f64 / target),
            fmt(slowdown),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// §2 ablation: the exponential penalty's cost of obliviousness, the linear
/// floor, and the self-scheduling metric's (1+ε)-faithfulness.
pub fn penalty_ablation(quick: bool) -> String {
    let p = if quick { 512 } else { 2048 };
    let m = p / 16;
    let l = 4u64;
    let eps = 0.2;
    let mut out = String::new();
    out.push_str(&format!(
        "== Penalty ablation (§2): p = {p}, m = {m} — pricing the same runs under every metric ==\n"
    ));
    let mut t = Table::new(vec![
        "workload",
        "schedule",
        "BSP(m) exp",
        "BSP(m) linear",
        "ssBSP(m)",
        "exp/ss",
    ]);
    let ss = SelfSchedulingBspM { m, l };
    for (name, wl) in skew_suite(p, quick) {
        for (sname, profile) in [
            (
                "U-Send",
                to_profile(&UnbalancedSend::new(eps).schedule(&wl, m, 3), &wl),
            ),
            ("eager", to_profile(&EagerSend.schedule(&wl, m, 0), &wl)),
        ] {
            let profs: [SuperstepProfile; 1] = [profile];
            let exp = pbw_models::BspM {
                m,
                l,
                penalty: PenaltyFn::Exponential,
            }
            .run_cost(&profs);
            let lin = pbw_models::BspM {
                m,
                l,
                penalty: PenaltyFn::Linear,
            }
            .run_cost(&profs);
            let self_s = ss.run_cost(&profs);
            t.row(vec![
                name.to_string(),
                sname.to_string(),
                fmt(exp),
                fmt(lin),
                fmt(self_s),
                fmt(exp / self_s),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str("\n(Scheduled sends price within (1+ε) of the self-scheduling metric under the\n exponential penalty — the §2 claim that the simplified metric suffices; the\n oblivious schedule's exp/ss ratio explodes.)\n");
    out
}

/// How the w.h.p. guarantee behaves at finite parameters: sweep ε and m,
/// report the fraction of overloaded steps and the optimality ratio. The
/// theorem's failure probability is `e^{−Ω(ε²m)}` — the table shows the
/// overload mass melting away as ε²m grows.
pub fn whp_phase(quick: bool) -> String {
    let p = 1024usize;
    let per = if quick { 32 } else { 64 };
    let mut out = String::new();
    out.push_str(&format!(
        "== Theorem 6.2's w.h.p. guarantee at finite ε²m (p = {p}, uniform {per}/proc) ==\n"
    ));
    let mut t = Table::new(vec![
        "m",
        "ε",
        "ε²m",
        "overloaded steps %",
        "max load / m",
        "ratio to opt",
    ]);
    for &m in &[16usize, 64, 256] {
        for &eps in &[0.1f64, 0.3, 0.6] {
            let wl = workload::uniform_random(p, per as u64, 5);
            let sched = UnbalancedSend::new(eps).schedule(&wl, m, 11);
            let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
            let pct = 100.0 * cost.overloaded_slots as f64 / cost.makespan.max(1) as f64;
            t.row(vec![
                m.to_string(),
                fmt(eps),
                fmt(eps * eps * m as f64),
                fmt(pct),
                fmt(cost.max_slot_load as f64 / m as f64),
                fmt(cost.ratio_to_opt),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str("\n(Overload mass and the penalty's bite vanish as ε²m grows — the finite-size\n face of the e^{−Ω(ε²m)} failure probability. Even where overloads persist,\n each costs only e^{m_t/m−1} ≈ 1+o(1), keeping the ratio near 1+ε.)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbalanced_send_near_optimal_on_suite() {
        // The report-level claim, checked numerically: within (1+ε) of the
        // offline optimum under the exponential penalty (a small extra
        // slack covers mild finite-m overloads, which cost e^{o(1)} each).
        let (p, m, eps) = (512usize, 128usize, 0.3);
        for (name, wl) in skew_suite(p, true) {
            let us = evaluate_schedule(
                &UnbalancedSend::new(eps).schedule(&wl, m, 7),
                &wl,
                m,
                PenaltyFn::Exponential,
            );
            assert!(
                us.ratio_to_opt <= 1.0 + eps + 0.15,
                "{name}: {}",
                us.ratio_to_opt
            );
        }
        assert!(unbalanced_send(true).contains("U-Send"));
    }

    #[test]
    fn consecutive_within_targets() {
        let r = consecutive_send(true);
        for line in r.lines().filter(|l| l.contains("  ")) {
            assert!(!line.contains(" NO "), "{line}");
        }
    }

    #[test]
    fn granular_within_targets() {
        let (p, m, c) = (512usize, 128usize, 3.0);
        for (name, wl) in skew_suite(p, true) {
            let cost = evaluate_schedule(
                &UnbalancedGranularSend::new(c).schedule(&wl, m, 13),
                &wl,
                m,
                PenaltyFn::Exponential,
            );
            let target = c * wl.n_flits() as f64 / m as f64 + wl.xbar() as f64;
            assert!((cost.makespan as f64) <= target, "{name}");
        }
        assert!(granular_send(true).contains("Granular"));
    }

    #[test]
    fn flits_penalty_stays_mild() {
        let r = flits(true);
        // Every slowdown cell must be ~1 (the report prints them in the
        // last column); recompute one numerically for rigor.
        let wl = workload::variable_length(256, 16, 8.0, 22);
        let m = 64;
        let cost = evaluate_schedule(
            &UnbalancedFlitSend::new(0.25).schedule(&wl, m, 31),
            &wl,
            m,
            PenaltyFn::Exponential,
        );
        assert!(
            cost.c_m <= 1.3 * cost.makespan as f64,
            "{} vs {}",
            cost.c_m,
            cost.makespan
        );
        assert!(r.contains("exp slowdown"));
    }

    #[test]
    fn overhead_ratio_near_one() {
        let r = overhead(true);
        assert!(r.contains("exp slowdown"));
        let wl = workload::variable_length(256, 16, 6.0, 33);
        let m = 64;
        let sched = OverheadSend::new(0.25, 8).schedule(&wl, m, 17);
        let cost = evaluate_overhead_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        let target =
            bounds::overhead_send_target(wl.n_flits(), m, wl.lbar(), wl.lhat(), 8, 0.25, 256, 1);
        assert!((cost.makespan as f64) <= 1.2 * target + wl.xbar() as f64);
    }

    #[test]
    fn ablation_runs() {
        let r = penalty_ablation(true);
        assert!(r.contains("ssBSP"));
    }

    #[test]
    fn whp_phase_shows_melting_overloads() {
        let r = whp_phase(true);
        assert!(r.contains("ε²m"));
        // The largest-ε²m row must have (near-)zero overload.
        let rows: Vec<&str> = r.lines().filter(|l| l.starts_with("256")).collect();
        assert!(!rows.is_empty());
    }
}
