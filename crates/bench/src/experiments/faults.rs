//! Experiment for the fault-injection subsystem (`pbw-faults` +
//! `pbw-core::recovery`): cost inflation and delivery-time tails under
//! seeded message loss, and the stability-margin erosion the same loss
//! inflicts on the Section 6.2 dynamic router.

use crate::table::{fmt, Table};
use pbw_adversary::{AlgorithmB, AqtParams, BackpressureConfig, SteadyAdversary};
use pbw_core::recovery::{run_with_recovery_to, RecoveryConfig};
use pbw_core::schedulers::UnbalancedSend;
use pbw_core::workload;
use pbw_faults::{FaultPlan, FaultSpec};
use pbw_models::MachineParams;
use pbw_trace::{NullSink, RecordingSink, TraceEvent, TraceSink};
use rayon::prelude::*;
use std::sync::Arc;

/// Run one sweep point against a private sink so points can execute in
/// parallel: the recorded events are replayed into the global sink in sweep
/// order afterwards, keeping trace output byte-identical at every thread
/// count. When the global sink is disabled nothing is recorded at all,
/// matching the sequential path's cost.
fn with_point_sink<R>(
    tracing: bool,
    run: impl FnOnce(Arc<dyn TraceSink>) -> R,
) -> (R, Vec<TraceEvent>) {
    if tracing {
        let rec = Arc::new(RecordingSink::new());
        let result = run(rec.clone());
        (result, rec.take())
    } else {
        (run(Arc::new(NullSink)), Vec::new())
    }
}

/// The drop rates the sweep visits.
const PHIS: [f64; 4] = [0.0, 0.01, 0.05, 0.1];

/// Run the sweep with the default fault seed.
pub fn faults(quick: bool) -> String {
    faults_seeded(quick, 7)
}

/// Run the sweep with an explicit fault seed (`reproduce faults --seed N`).
/// Equal seeds replay bit-identically, including the trace stream — CI
/// diffs two such runs.
pub fn faults_seeded(quick: bool, seed: u64) -> String {
    let p = if quick { 128 } else { 256 };
    let g = 8u64;
    let l = 16u64;
    let params = MachineParams::from_gap(p, g, l);
    let wl = workload::single_hot_sender(p, (p as u64) * 8, 4, 2);
    let scheduler = UnbalancedSend::new(0.3);
    let cfg = RecoveryConfig::default();

    let mut out = String::new();
    out.push_str(&format!(
        "== Fault injection + retransmission recovery: p = {p}, g = {g}, m = {}, L = {l}, fault seed = {seed} ==\n",
        params.m
    ));
    out.push_str("Seeded drops on a hot-sender h-relation; ack/retransmit recovery with bounded\nexponential backoff. Inflation is cost(φ)/cost(0) per model.\n\n");

    let mut t = Table::new(vec![
        "φ",
        "rounds",
        "resent flits",
        "acks",
        "backoff",
        "BSP(g) cost",
        "BSP(g) infl.",
        "BSP(m) cost",
        "BSP(m) infl.",
        "arrival p99",
        "all delivered?",
    ]);
    // Sweep points are independent (each recovery owns its machine and
    // hook), so they run in parallel; replay + table rows stay sequential
    // in φ order.
    let global = pbw_trace::global_sink();
    let tracing = global.enabled();
    let outcomes: Vec<_> = PHIS
        .to_vec()
        .into_par_iter()
        .map(|phi| {
            let hook = if phi > 0.0 {
                Some(Arc::new(FaultPlan::new(FaultSpec::drop_only(phi), seed))
                    as Arc<dyn pbw_sim::DeliveryHook>)
            } else {
                None
            };
            with_point_sink(tracing, |sink| {
                run_with_recovery_to(sink, &wl, &scheduler, params, 11, hook, &cfg)
            })
        })
        .collect();
    let mut base: Option<(f64, f64)> = None;
    for (phi, (outcome, events)) in PHIS.into_iter().zip(outcomes) {
        for ev in events {
            global.record(ev);
        }
        let (g0, m0) = *base.get_or_insert((outcome.summary.bsp_g, outcome.summary.bsp_m_exp));
        t.row(vec![
            fmt(phi),
            outcome.rounds.to_string(),
            outcome.resent_flits.to_string(),
            outcome.ack_supersteps.to_string(),
            outcome.backoff_supersteps.to_string(),
            fmt(outcome.summary.bsp_g),
            fmt(outcome.summary.bsp_g / g0),
            fmt(outcome.summary.bsp_m_exp),
            fmt(outcome.summary.bsp_m_exp / m0),
            outcome
                .arrival_percentile(0.99)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            if outcome.delivered_all {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(φ = 0 takes the recovery path but is cost-identical to the reliable\n direct execution: one send superstep, zero acks, zero retransmissions.)\n");

    // Stability-margin erosion: the same loss process against Algorithm B.
    // Retransmissions inflate the effective arrival rate to α/(1−φ), so a
    // router provisioned near capacity destabilizes at φ* ≈ 1 − α(1+ε)/m.
    let (rp, rm, rw) = (64usize, 8usize, 128u64);
    let intervals = if quick { 150 } else { 500 };
    let algo = AlgorithmB {
        p: rp,
        m: rm,
        w: rw,
        eps: 0.3,
        seed: 9,
    };
    out.push_str(&format!(
        "\n== Algorithm B stability-margin erosion: p = {rp}, m = {rm}, w = {rw}, α = 5 ==\n"
    ));
    let mut t2 = Table::new(vec![
        "φ",
        "α/(1−φ)",
        "retransmitted",
        "growth/interval",
        "verdict",
        "p99 delay",
    ]);
    let erosion_phis = [PHIS[0], PHIS[1], PHIS[2], PHIS[3], 0.4];
    let traces: Vec<_> = erosion_phis
        .to_vec()
        .into_par_iter()
        .map(|phi| {
            let aqt = AqtParams {
                w: rw,
                alpha: 5.0,
                beta: 0.5,
            };
            let mut adv = SteadyAdversary::new(rp, aqt);
            with_point_sink(tracing, |sink| {
                algo.run_with_faults_to(&mut adv, intervals, phi, seed, sink)
            })
        })
        .collect();
    for (phi, (tr, events)) in erosion_phis.into_iter().zip(traces) {
        for ev in events {
            global.record(ev);
        }
        t2.row(vec![
            fmt(phi),
            fmt(5.0 / (1.0 - phi)),
            tr.retransmitted.to_string(),
            fmt(tr.backlog_growth()),
            if tr.looks_stable() {
                "stable".to_string()
            } else {
                "UNSTABLE".to_string()
            },
            tr.delay_percentile(0.99)
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str(&t2.render());

    // Backpressure: the overloaded router behind a bounded queue sheds load
    // instead of diverging, and the trace reports post-burst recovery.
    let bp = BackpressureConfig::bounded(512);
    let aqt = AqtParams {
        w: rw,
        alpha: 12.0,
        beta: 0.5,
    };
    let mut adv = SteadyAdversary::new(rp, aqt);
    let tr = algo.run_with_backpressure(&mut adv, intervals, bp);
    let pending = tr.queue_msgs.last().copied().unwrap_or(0);
    out.push_str(&format!(
        "\n== Router backpressure under overload (α = 12 > m): bounded queue = {} ==\n\
         shed {} of {} injected ({}%), delivered {}, pending {}, overloaded {}/{} intervals,\n\
         post-burst recovery: {} (conservation: delivered + pending + shed = injected)\n",
        bp.max_queue_msgs,
        tr.shed_msgs,
        tr.injected,
        fmt(100.0 * tr.shed_msgs as f64 / tr.injected.max(1) as f64),
        tr.delivered,
        pending,
        tr.overload_intervals,
        intervals,
        tr.recovery_intervals()
            .map(|r| format!("{r} intervals"))
            .unwrap_or_else(|| "still overloaded".into()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_report_shape() {
        let r = faults(true);
        // One sweep row per φ, a φ = 0 baseline with inflation exactly 1.
        for phi in PHIS {
            assert!(r.contains(&fmt(phi)), "missing φ = {phi} in\n{r}");
        }
        // Erosion: reliable run stable, φ = 0.4 unstable.
        assert!(r.contains("stable"), "{r}");
        assert!(r.contains("UNSTABLE"), "{r}");
        // Backpressure section reports shedding.
        assert!(r.contains("shed"), "{r}");
    }

    #[test]
    fn same_seed_reports_are_identical_and_seeds_matter() {
        let a = faults_seeded(true, 7);
        let b = faults_seeded(true, 7);
        assert_eq!(a, b);
        let c = faults_seeded(true, 8);
        assert_ne!(a, c);
    }
}
