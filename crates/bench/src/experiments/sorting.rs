//! The sample-sort study (after Gerbessiotis–Siniolakis, arXiv 1408.6729):
//! per-superstep BSP(g) vs BSP(m) predicted cost for BSP sample sort,
//! swept over oversampling ratio × input skew.
//!
//! The point the table makes is the paper's local/global split driven by
//! *data* instead of a hand-picked h-relation: the all-to-all bucket
//! exchange is staggered below `m` injections per slot, so BSP(m) charges
//! the aggregate `n/m` no matter how lopsided the buckets are, while
//! BSP(g) charges `g·max_bucket` — their ratio on the exchange superstep
//! is exactly the bucket imbalance `λ = max_bucket/(n/p)`. High
//! oversampling ratios drive λ → 1 (the models agree; the crossover),
//! low ratios under zipf skew leave λ ≫ 1 (they diverge), and a
//! duplicate-heavy keyset pins λ ≈ p/#values at *every* ratio — equal
//! keys are unsplittable, so that workload never crosses over.

use crate::table::{fmt, Table};
use pbw_algos::sample_sort::{keyset, run_opts, KeyDist, SampleSortConfig, Sampling};
use pbw_models::{BspG, BspM, CostModel, MachineParams, PenaltyFn};
use pbw_trace::{NullSink, RecordingSink, TraceEvent, TraceSink};
use rayon::prelude::*;
use std::sync::Arc;

/// Oversampling ratios the sweep visits (samples per processor). The top
/// rung equals the block size `n/p` — regular sampling degenerates to
/// exact global quantiles there, the best any splitter choice can do.
const RATIOS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Models agree at a sweep point when the exchange-superstep BSP(g) price
/// is within 5% of the BSP(m) price.
const CROSSOVER: f64 = 1.05;

/// Per-point private sink (same idiom as `reproduce faults`/`crashes`):
/// points run in parallel, their recorded events replay into the global
/// sink in sweep order, so trace output is byte-identical at every thread
/// count.
fn with_point_sink<R>(
    tracing: bool,
    run: impl FnOnce(Arc<dyn TraceSink>) -> R,
) -> (R, Vec<TraceEvent>) {
    if tracing {
        let rec = Arc::new(RecordingSink::new());
        let result = run(rec.clone());
        (result, rec.take())
    } else {
        (run(Arc::new(NullSink)), Vec::new())
    }
}

/// Human name of superstep `i` in the `⌈lg p⌉ + 3` layout.
fn step_name(i: usize, rounds: usize) -> &'static str {
    if i == 0 {
        "sort+sample"
    } else if i == 1 {
        "select"
    } else if i <= rounds {
        "bcast"
    } else if i == rounds + 1 {
        "exchange"
    } else {
        "merge"
    }
}

/// Run the sweep with the default seed.
pub fn sorting(quick: bool) -> String {
    sorting_seeded(quick, 7)
}

/// Run the sweep with an explicit seed (`reproduce sorting --seed N`).
/// The seed drives both the keysets and the seeded oversampling draws;
/// equal seeds replay bit-identically, trace stream included — CI diffs
/// two such runs.
pub fn sorting_seeded(quick: bool, seed: u64) -> String {
    // Every point is a p=32, n=2048 in-memory sort — already sub-second,
    // so quick mode shortens nothing and CI exercises the full table.
    let _ = quick;
    let p = 32;
    let per = 64;
    let n = p * per;
    let g = 4u64;
    let l = 8u64;
    let params = MachineParams::from_gap(p, g, l);

    let mut out = String::new();
    out.push_str(&format!(
        "== BSP sample sort: local vs. global price of bucket skew: p = {p}, n/p = {per}, g = {g}, m = {}, L = {l}, seed = {seed} ==\n",
        params.m
    ));
    out.push_str(
        "Seeded-oversampling sample sort (ratio samples/processor) on real supersteps;\n\
         exchange sends staggered below m per slot. Exch g/m = BSP(g)/BSP(m) on the\n\
         all-to-all exchange superstep alone — equal to the bucket imbalance λ =\n\
         max_bucket/(n/p) whenever the aggregate term n/m dominates. Gather g/m is\n\
         the same ratio on the sort+sample superstep, whose p·ratio fan-in to the\n\
         splitter processor is the opposite skew: it *grows* with the ratio.\n\n",
    );

    let grid: Vec<(KeyDist, usize)> = KeyDist::ALL
        .iter()
        .flat_map(|&d| RATIOS.iter().map(move |&r| (d, r)))
        .collect();
    let global = pbw_trace::global_sink();
    let tracing = global.enabled();
    let runs: Vec<_> = grid
        .clone()
        .into_par_iter()
        .map(|(dist, ratio)| {
            let cfg = SampleSortConfig {
                ratio,
                sampling: Sampling::Regular,
                seed,
            };
            let inputs = keyset(dist, n, seed);
            with_point_sink(tracing, |sink| {
                run_opts(params, &inputs, cfg, false, None, Some(sink))
            })
        })
        .collect();

    let bsp_g = BspG { g, l };
    let bsp_m = BspM {
        m: params.m,
        l,
        penalty: PenaltyFn::Exponential,
    };

    let mut t = Table::new(vec![
        "dist",
        "ratio",
        "max_bkt",
        "λ",
        "exch BSP(g)",
        "exch BSP(m)",
        "exch g/m",
        "gather g/m",
        "total BSP(g)",
        "total BSP(m)",
        "g-dominant",
        "sorted?",
    ]);
    let mut crossover: Vec<String> = Vec::new();
    let mut last_dist: Option<KeyDist> = None;
    for ((dist, ratio), (run, events)) in grid.into_iter().zip(runs) {
        for ev in events {
            global.record(ev);
        }
        let rounds = run.exchange_step - 1;
        let ex = &run.reports[run.exchange_step].profile;
        let gather = &run.reports[0].profile;
        let exch_ratio = bsp_g.superstep_cost(ex) / bsp_m.superstep_cost(ex);
        let gather_ratio = bsp_g.superstep_cost(gather) / bsp_m.superstep_cost(gather);
        let dominant = run
            .reports
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                bsp_g
                    .superstep_cost(&a.profile)
                    .total_cmp(&bsp_g.superstep_cost(&b.profile))
            })
            .map(|(i, _)| step_name(i, rounds))
            .unwrap_or("?");
        if last_dist != Some(dist) {
            last_dist = Some(dist);
            crossover.push(format!(
                "{}: none ≤ {}",
                dist.name(),
                RATIOS[RATIOS.len() - 1]
            ));
        }
        if exch_ratio <= CROSSOVER && crossover.last().is_some_and(|s| s.contains("none")) {
            let slot = crossover.last_mut().expect("pushed above");
            *slot = format!("{}: ratio {}", dist.name(), ratio);
        }
        t.row(vec![
            dist.name().to_string(),
            ratio.to_string(),
            run.max_bucket.to_string(),
            fmt(run.imbalance(per)),
            fmt(bsp_g.superstep_cost(ex)),
            fmt(bsp_m.superstep_cost(ex)),
            fmt(exch_ratio),
            fmt(gather_ratio),
            fmt(run.summary.bsp_g),
            fmt(run.summary.bsp_m_exp),
            dominant.to_string(),
            if run.ok {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nExchange crossover (first ratio with exch g/m ≤ {CROSSOVER}): {}.\n\
         (Uniform/presorted keysets cross over once the splitters are sampled finely\n\
         enough; zipf diverges hardest at low ratios — half its mass sits in a\n\
         narrow head the coarse splitters lump into one bucket — and floors at\n\
         λ ≈ 2 even under exact splitters, because its hot tie values each hold a\n\
         full block of unsplittable copies. The duplicate-heavy keyset never\n\
         crosses over at all: 8 distinct values pin λ ≈ p/8 = 4 (the saturation\n\
         point g, where BSP(m) switches from charging n/m to charging h and the\n\
         ratio stops growing) at every ratio. Meanwhile the gather g/m\n\
         column shows the dual skew: pid 0's p·ratio sample fan-in is priced g×\n\
         under the local restriction, so past the crossover BSP(g)'s dominant\n\
         superstep flips from the exchange to the sample gather — oversampling is\n\
         free globally but becomes the bottleneck locally.)\n",
        crossover.join(", ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorting_report_shape() {
        let r = sorting(true);
        // Every sweep point actually sorts.
        assert_eq!(
            r.matches("yes").count(),
            KeyDist::ALL.len() * RATIOS.len(),
            "{r}"
        );
        assert!(!r.contains(" NO"), "{r}");
        assert!(r.contains("exch g/m"), "{r}");
        assert!(r.contains("Exchange crossover"), "{r}");
        // The never-crossing workload is called out as such.
        assert!(r.contains("dupheavy: none"), "{r}");
    }

    #[test]
    fn same_seed_reports_are_identical_and_seeds_matter() {
        let a = sorting_seeded(true, 7);
        let b = sorting_seeded(true, 7);
        assert_eq!(a, b);
        let c = sorting_seeded(true, 8);
        assert_ne!(a, c);
    }
}
