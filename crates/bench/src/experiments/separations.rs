//! Experiments for Sections 4 and 5: Table 1, the broadcast lower bound,
//! the routing gap, concurrent-read simulation, leader recognition, the
//! CRCW h-relation substrate and the τ preamble.

use crate::table::{fmt, Table};
use pbw_algos::{broadcast, cr_sim, leader as leader_algo, list_ranking, one_to_all, reduce, sort};
use pbw_core::schedulers::{Scheduler, UnbalancedSend};
use pbw_core::{evaluate_schedule, workload};
use pbw_models::{bounds, MachineParams, PenaltyFn};
use pbw_pram::hrelation;
use pbw_pram::primitives::Fidelity;
use pbw_sim::Word;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_bits(n: usize, seed: u64) -> Vec<Word> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..2)).collect()
}

fn random_keys(n: usize, seed: u64) -> Vec<Word> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.gen_range(-1_000_000..1_000_000))
        .collect()
}

/// Table 1: measured model costs for the five problems at `n = p`,
/// `m = p/g`, with the paper's predicted separation next to the measured
/// one.
pub fn table1(quick: bool) -> String {
    let configs: &[(usize, u64, u64)] = if quick {
        &[(256, 16, 16)]
    } else {
        &[
            (256, 16, 16),
            (1024, 16, 16),
            (1024, 32, 32),
            (4096, 16, 16),
        ]
    };
    let mut out = String::new();
    out.push_str("== Table 1: locally- vs globally-limited models (n = p, m = p/g) ==\n");
    for &(p, g, l) in configs {
        let mp = MachineParams::from_gap(p, g, l);
        let n = p;
        out.push_str(&format!(
            "\n-- p = {p}, g = {g}, m = {}, L = {l} --\n",
            mp.m
        ));
        let mut t = Table::new(vec![
            "problem",
            "QSM(m)",
            "QSM(g)",
            "BSP(m)",
            "BSP(g)",
            "sep QSM",
            "sep BSP",
            "paper sep",
        ]);

        // One-to-all personalized communication.
        let ota = one_to_all::run(mp);
        assert!(ota.ok);
        t.row(vec![
            "one-to-all".to_string(),
            fmt(ota.qsm.qsm_m_exp),
            fmt(ota.qsm.qsm_g),
            fmt(ota.bsp.bsp_m_exp),
            fmt(ota.bsp.bsp_g),
            fmt(ota.qsm.qsm_separation()),
            fmt(ota.bsp.bsp_separation()),
            format!("Θ(g) = {g}"),
        ]);

        // Broadcasting.
        let bqm = broadcast::qsm_m(mp);
        let bqg = broadcast::qsm_g(mp);
        let bbm = broadcast::bsp_m(mp);
        let bbg = broadcast::bsp_g(mp);
        assert!(bqm.ok && bqg.ok && bbm.ok && bbg.ok);
        let pred = pbw_models::lg(p as f64) / pbw_models::lg(g as f64);
        t.row(vec![
            "broadcast".to_string(),
            fmt(bqm.time),
            fmt(bqg.time),
            fmt(bbm.time),
            fmt(bbg.time),
            fmt(bqg.time / bqm.time),
            fmt(bbg.time / bbm.time),
            format!("Θ(lg p/lg g) = {}", fmt(pred)),
        ]);

        // Parity (summation is the same machinery under Op::Sum).
        let bits = random_bits(n, 42);
        let pqm = reduce::qsm_m(mp, &bits, reduce::Op::Xor);
        let pqg = reduce::qsm_g(mp, &bits, reduce::Op::Xor);
        let pbm = reduce::bsp_m(mp, &bits, reduce::Op::Xor);
        let pbg = reduce::bsp_g(mp, &bits, reduce::Op::Xor);
        assert!(pqm.ok && pqg.ok && pbm.ok && pbg.ok);
        let pred = pbw_models::lg(n as f64) / pbw_models::lg(pbw_models::lg(n as f64));
        t.row(vec![
            "parity".to_string(),
            fmt(pqm.time),
            fmt(pqg.time),
            fmt(pbm.time),
            fmt(pbg.time),
            fmt(pqg.time / pqm.time),
            fmt(pbg.time / pbm.time),
            format!("Ω(lg n/lglg n) = {}", fmt(pred)),
        ]);

        // List ranking: measured PRAM conversion for the m-models, the
        // Beame–Håstad-derived lower bound for the g-models.
        let (lrq, lrb) = list_ranking::converted(mp, n, 7);
        assert!(lrq.ok && lrb.ok);
        let glb = bounds::g_model_lower(n, g);
        t.row(vec![
            "list ranking".to_string(),
            fmt(lrq.time),
            format!("≥{}", fmt(glb)),
            fmt(lrb.time),
            format!("≥{}", fmt(glb)),
            "(asympt.)".to_string(),
            "(asympt.)".to_string(),
            format!("Ω(lg n/lglg n) = {}", fmt(pred)),
        ]);

        // Sorting: measured sample sort — the SAME executions priced under
        // the local metrics give honest g-columns (staggering is free
        // there), and the measured separation is exactly the imbalance of
        // the sort's communication.
        let keys = random_keys(n, 11);
        let (sq, sqs) = sort::qsm_m_detailed(mp, &keys);
        let (sb, sbs) = sort::bsp_m_detailed(mp, &keys);
        assert!(sq.ok && sb.ok);
        t.row(vec![
            "sorting".to_string(),
            fmt(sq.time),
            format!("{} (≥{})", fmt(sqs.qsm_g), fmt(glb)),
            fmt(sb.time),
            format!("{} (≥{})", fmt(sbs.bsp_g), fmt(glb)),
            fmt(sqs.qsm_separation()),
            fmt(sbs.bsp_separation()),
            format!("Θ(lg n/lglg n) = {}", fmt(pred)),
        ]);

        out.push_str(&t.render());
    }
    out.push_str(
        "\n(g-model cells marked ≥ are the paper's Ω lower bounds. For list ranking and\n sorting the separation is asymptotic — the measured m-model constants dominate\n the Ω bound at simulable n; what the simulation does establish is the m-model\n upper-bound *shape*, O(n/m)-with-constants, versus a g-model bound growing as\n g·lg n/lglg n.)\n",
    );
    out
}

/// Theorem 4.1: the deterministic BSP(g) broadcast lower bound vs. the
/// fan-out-⌈L/g⌉ tree and the §4.2 ternary non-receipt algorithm.
pub fn broadcast_lb(quick: bool) -> String {
    let p = if quick { 729 } else { 6561 };
    let g = 27u64;
    let mut out = String::new();
    out.push_str(&format!(
        "== Broadcast on BSP(g): Thm 4.1 lower bound vs algorithms (p = {p}, g = {g}) ==\n"
    ));
    let mut t = Table::new(vec![
        "L",
        "L/g",
        "Thm4.1 lower",
        "tree (measured)",
        "ternary (measured)",
        "tree/lower",
    ]);
    let ls: Vec<u64> = if quick {
        vec![27, 108, 432]
    } else {
        vec![27, 54, 108, 216, 432, 1728]
    };
    for l in ls {
        let mp = MachineParams::from_gap(p, g, l);
        let lower = bounds::broadcast_bsp_g_lower(p, g, l);
        let tree = broadcast::bsp_g(mp);
        assert!(tree.ok);
        let ternary = broadcast::ternary_nonreceipt(mp, true);
        assert!(ternary.ok);
        let tern_cell = if l <= g {
            format!("{} = g·⌈lg₃p⌉+L", fmt(ternary.time))
        } else {
            fmt(ternary.time)
        };
        t.row(vec![
            fmt(l as f64),
            fmt(l as f64 / g as f64),
            fmt(lower),
            fmt(tree.time),
            tern_cell,
            fmt(tree.time / lower),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(The tree tracks the lower bound within a small constant across L/g; at L ≤ g\n the non-receipt protocol achieves g·⌈lg₃ p⌉, beating receive-only trees.)\n");
    out
}

/// Proposition 6.1 vs the global lower bound: the routing gap appears
/// exactly when the relation is imbalanced (`h ≥ g·n/p`).
pub fn gvsm_routing(quick: bool) -> String {
    let p = if quick { 256 } else { 1024 };
    let g = 16u64;
    let l = 8u64;
    let mp = MachineParams::from_gap(p, g, l);
    let mut out = String::new();
    out.push_str(&format!(
        "== Unbalanced routing: BSP(g) vs BSP(m) (p = {p}, g = {g}, m = {}) ==\n",
        mp.m
    ));
    let mut t = Table::new(vec![
        "hot sender load",
        "imbalance h/(n/p)",
        "BSP(g) = g(x̄+ȳ)+L",
        "BSP(m) measured",
        "global lower",
        "gap meas",
        "gap pred",
    ]);
    let hots: Vec<u64> = if quick {
        vec![16, 256, 4096]
    } else {
        vec![16, 64, 256, 1024, 4096, 16384]
    };
    for hot in hots {
        let wl = workload::single_hot_sender(p, hot, 16, 3);
        let sched = UnbalancedSend::new(0.2).schedule(&wl, mp.m, 9);
        let cost = evaluate_schedule(&sched, &wl, mp.m, PenaltyFn::Exponential);
        let local = bounds::routing_bsp_g(wl.xbar(), wl.ybar(), g, l);
        let lower = bounds::routing_global_lower(wl.n_flits(), mp.m, wl.xbar(), wl.ybar());
        let pred = (local / lower).min(g as f64 * 2.0);
        t.row(vec![
            fmt(hot as f64),
            fmt(wl.imbalance()),
            fmt(local),
            fmt(cost.model_time),
            fmt(lower),
            fmt(local / cost.model_time),
            fmt(pred),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\n(The measured gap approaches Θ(g) once the hot sender dominates: h ≥ g·n/p.)\n",
    );
    out
}

/// Theorem 5.1: one CRCW PRAM(m) read step on the QSM(m) in O(p/m).
pub fn cr_sim(quick: bool) -> String {
    let mut out = String::new();
    out.push_str("== Simulating a CRCW PRAM(m) read step on QSM(m) (Thm 5.1) ==\n");
    let mut t = Table::new(vec!["p", "m", "pattern", "measured", "p/m", "ratio"]);
    let configs: &[(usize, usize)] = if quick {
        &[(256, 16)]
    } else {
        &[(256, 16), (1024, 32), (2048, 32), (4096, 64)]
    };
    for &(p, m) in configs {
        let mp = MachineParams::from_bandwidth(p, m, 4);
        let mem: Vec<Word> = (0..64).map(|i| 500 + i as Word).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for (name, addrs) in [
            ("all-same", vec![5usize; p]),
            ("distinct", (0..p).map(|i| i % 64).collect::<Vec<_>>()),
            (
                "power-law",
                (0..p)
                    .map(|_| {
                        if rng.gen_bool(0.75) {
                            rng.gen_range(0..2)
                        } else {
                            rng.gen_range(0..64)
                        }
                    })
                    .collect::<Vec<_>>(),
            ),
        ] {
            let r = cr_sim::simulate_read_step(mp, &mem, &addrs);
            assert!(r.ok, "p={p} m={m} {name}");
            let bound = bounds::cr_sim_slowdown(p, m);
            t.row(vec![
                p.to_string(),
                m.to_string(),
                name.to_string(),
                fmt(r.time),
                fmt(bound),
                fmt(r.time / bound),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str("\n(Measured/(p/m) stays a small constant across patterns and sizes: O(p/m).)\n");
    out
}

/// Theorem 5.2 / Lemma 5.3: the Leader Recognition separation.
pub fn leader(quick: bool) -> String {
    let mut out = String::new();
    out.push_str("== Leader Recognition: CRCW PRAM(m) vs QSM(m) (Thm 5.2) ==\n");
    let mut t = Table::new(vec![
        "p",
        "m",
        "CRCW PRAM(m)",
        "QSM(m)",
        "sep meas",
        "paper Ω(p·lgm/(m·lgp))",
        "previous 2^√lgp",
    ]);
    let configs: &[(usize, usize)] = if quick {
        &[(1024, 16)]
    } else {
        &[(256, 16), (1024, 16), (4096, 16), (4096, 64), (16384, 64)]
    };
    for &(p, m) in configs {
        let mp = MachineParams::from_bandwidth(p, m, 4);
        let cr = leader_algo::crcw_pram_m(p, m, p / 3);
        let er = leader_algo::qsm_m(mp, p / 3);
        assert!(cr.ok && er.ok);
        t.row(vec![
            p.to_string(),
            m.to_string(),
            fmt(cr.time),
            fmt(er.time),
            fmt(er.time / cr.time),
            fmt(bounds::er_cr_separation(p, m)),
            fmt(bounds::previous_er_cr_separation(p)),
        ]);
    }
    out.push_str(&t.render());

    // The word-size dimension of Thm 5.2: CRCW PRAM(m) leader recognition
    // takes ⌈lg p / w⌉ + ⌈lg p / w⌉ steps when cells hold w bits.
    out.push('\n');
    let mut t2 = Table::new(vec![
        "p",
        "w (bits)",
        "CRCW PRAM(m) measured",
        "paper max(lg p/w, 1)",
    ]);
    let p_fix = 1 << 12;
    for w in [1u32, 2, 4, 12, 64] {
        let r = leader_algo::crcw_pram_m_wordsize(p_fix, 4, 99, w);
        assert!(r.ok);
        t2.row(vec![
            p_fix.to_string(),
            w.to_string(),
            fmt(r.time),
            fmt((pbw_models::lg(p_fix as f64) / w as f64).max(1.0)),
        ]);
    }
    out.push_str(&t2.render());
    out.push_str("\n(When m ≪ p the measured separation dwarfs the previously known 2^Ω(√lg p);\n the w-sweep shows the O(max(lg p/w, 1)) cell-width dependence of Thm 5.2.)\n");
    out
}

/// Section 4.1: the O(h) CRCW h-relation realizations.
pub fn hrel_crcw(quick: bool) -> String {
    let mut out = String::new();
    out.push_str("== Realizing h-relations on the CRCW PRAM in O(h) (§4.1) ==\n");
    let mut t = Table::new(vec![
        "p",
        "h",
        "dense (t)",
        "teams (t)",
        "chainsort (t)",
        "t/h (teams)",
    ]);
    let p = if quick { 8 } else { 16 };
    let hs: Vec<usize> = if quick {
        vec![2, 8]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    };
    for h in hs {
        let sends: Vec<Vec<(usize, Word)>> = (0..p)
            .map(|src| (0..h).map(|k| (((src + k + 1) % p), k as Word)).collect())
            .collect();
        let dense = hrelation::realize_dense(&sends, Fidelity::Charged);
        let teams = hrelation::realize_teams(&sends);
        let chain = hrelation::realize_chainsort(&sends);
        assert!(hrelation::check_delivery(&sends, &dense));
        assert!(hrelation::check_delivery(&sends, &teams));
        assert!(hrelation::check_delivery(&sends, &chain));
        t.row(vec![
            p.to_string(),
            h.to_string(),
            fmt(dense.time as f64),
            fmt(teams.time as f64),
            fmt(chain.time as f64),
            fmt(teams.time as f64 / h as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(time/h converges to a constant: the O(h) realization that powers the\n CRCW→BSP(g) lower-bound conversion.)\n");
    out
}

/// The τ preamble: measured cost of computing and broadcasting n.
pub fn preamble(quick: bool) -> String {
    let mut out = String::new();
    out.push_str("== τ preamble: compute & broadcast n on BSP(m) ==\n");
    let mut t = Table::new(vec!["p", "m", "L", "measured", "τ bound", "ratio"]);
    let configs: &[(usize, usize, u64)] = if quick {
        &[(256, 16, 8)]
    } else {
        &[
            (256, 16, 8),
            (1024, 32, 8),
            (1024, 64, 16),
            (4096, 64, 8),
            (4096, 256, 32),
        ]
    };
    for &(p, m, l) in configs {
        let mp = MachineParams::from_bandwidth(p, m, l);
        let counts: Vec<u64> = (0..p).map(|i| (i % 13) as u64).collect();
        let pre = pbw_core::preamble::compute_and_broadcast_n(mp, &counts);
        assert_eq!(pre.n, counts.iter().sum::<u64>());
        t.row(vec![
            p.to_string(),
            m.to_string(),
            l.to_string(),
            fmt(pre.bsp_m_cost),
            fmt(pre.tau_bound),
            fmt(pre.bsp_m_cost / pre.tau_bound),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_and_separates() {
        let r = table1(true);
        assert!(r.contains("one-to-all"));
        assert!(r.contains("sorting"));
    }

    #[test]
    fn broadcast_lb_runs() {
        let r = broadcast_lb(true);
        assert!(r.contains("Thm4.1"));
    }

    #[test]
    fn gvsm_runs() {
        assert!(gvsm_routing(true).contains("imbalance"));
    }

    #[test]
    fn cr_sim_runs() {
        assert!(cr_sim(true).contains("power-law"));
    }

    #[test]
    fn leader_runs() {
        assert!(leader(true).contains("CRCW"));
    }

    #[test]
    fn hrel_runs() {
        assert!(hrel_crcw(true).contains("teams"));
    }

    #[test]
    fn preamble_runs() {
        assert!(preamble(true).contains("τ bound"));
    }
}
