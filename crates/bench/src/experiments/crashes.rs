//! Experiment for crash-stop failures + checkpoint/rollback recovery
//! (`pbw-core::recovery::checkpoint`): how the recovery overhead —
//! checkpoint-write h-relations, restore fan-ins, and replayed work —
//! prices under the *local* (BSP(g)) versus *global* (BSP(m)) bandwidth
//! restriction, swept over crash rate × checkpoint interval `k`.
//!
//! The separation the table exhibits is the paper's local/global split
//! applied to fault tolerance: a checkpoint write is a balanced h-relation
//! (every processor ships its state to a buddy), which BSP(g) charges
//! `g·h` while BSP(m)'s aggregate slots absorb it; a restore is a sparse
//! fan-in to just the restarted processors — nearly free globally, still
//! `g·h` locally.

use crate::table::{fmt, Table};
use pbw_core::recovery::checkpoint::{run_with_checkpointed_recovery_to, CheckpointConfig};
use pbw_core::recovery::RecoveryConfig;
use pbw_core::schedulers::UnbalancedSend;
use pbw_core::workload;
use pbw_faults::{FaultPlan, FaultSpec};
use pbw_models::MachineParams;
use pbw_trace::{NullSink, RecordingSink, TraceEvent, TraceSink};
use rayon::prelude::*;
use std::sync::Arc;

/// Crash onset probabilities (per processor-superstep) the sweep visits.
/// The machine-level crash probability per superstep is `1 − (1−φc)^p`, so
/// even these small rates make whole-machine outages routine.
const RATES: [f64; 4] = [0.0, 0.003, 0.01, 0.02];

/// Checkpoint intervals the sweep visits.
const INTERVALS: [u64; 3] = [1, 2, 4];

/// Per-point private sink (same idiom as `reproduce faults`): points run in
/// parallel, their recorded events replay into the global sink in sweep
/// order, so trace output is byte-identical at every thread count.
fn with_point_sink<R>(
    tracing: bool,
    run: impl FnOnce(Arc<dyn TraceSink>) -> R,
) -> (R, Vec<TraceEvent>) {
    if tracing {
        let rec = Arc::new(RecordingSink::new());
        let result = run(rec.clone());
        (result, rec.take())
    } else {
        (run(Arc::new(NullSink)), Vec::new())
    }
}

/// Run the sweep with the default fault seed.
pub fn crashes(quick: bool) -> String {
    crashes_seeded(quick, 7)
}

/// Run the sweep with an explicit fault seed (`reproduce crashes --seed N`).
/// Equal seeds replay bit-identically, including the trace stream — CI
/// diffs two such runs.
pub fn crashes_seeded(quick: bool, seed: u64) -> String {
    // The crash-rate ladder is calibrated to the machine-level outage
    // probability `1 − (1−φc)^p`, so `p` stays fixed across quick/full
    // (the flag shortens nothing here; every point is already sub-second).
    let _ = quick;
    let p = 64;
    let g = 8u64;
    let l = 16u64;
    let params = MachineParams::from_gap(p, g, l);
    let wl = workload::single_hot_sender(p, (p as u64) * 8, 4, 2);
    let scheduler = UnbalancedSend::new(0.3);
    let cfg = RecoveryConfig::default();
    let max_len = 2u64;

    let drop_rate = 0.02;

    let mut out = String::new();
    out.push_str(&format!(
        "== Crash-stop failures + checkpoint/rollback recovery: p = {p}, g = {g}, m = {}, L = {l}, fault seed = {seed} ==\n",
        params.m
    ));
    out.push_str(&format!(
        "Seeded crash-stop outages (onset rate φc per processor-superstep, outage ≤ 2\n\
         supersteps) on top of φ = {drop_rate} message loss, on a hot-sender h-relation;\n\
         superstep-consistent snapshots every k protocol supersteps, rollback +\n\
         wall-clock replay on failure. Overhead = checkpoint-write h-relations +\n\
         restore fan-ins, priced per model; the ratio column is the local/global\n\
         separation on that state traffic alone.\n\n",
    ));

    let grid: Vec<(u64, f64)> = INTERVALS
        .iter()
        .flat_map(|&k| RATES.iter().map(move |&r| (k, r)))
        .collect();
    let global = pbw_trace::global_sink();
    let tracing = global.enabled();
    let outcomes: Vec<_> = grid
        .clone()
        .into_par_iter()
        .map(|(k, rate)| {
            let spec = FaultSpec {
                drop_rate,
                crash_rate: rate,
                max_crash_len: max_len,
                ..FaultSpec::none()
            };
            let hook = Some(Arc::new(FaultPlan::new(spec, seed)) as Arc<dyn pbw_sim::DeliveryHook>);
            let ck = CheckpointConfig {
                interval: k,
                charge_state_io: true,
                max_rollbacks: 200,
            };
            with_point_sink(tracing, |sink| {
                run_with_checkpointed_recovery_to(
                    sink, &wl, &scheduler, params, 11, hook, &cfg, &ck,
                )
            })
        })
        .collect();

    let mut t = Table::new(vec![
        "k",
        "φc",
        "ckpts",
        "rollbacks",
        "replayed",
        "ovh BSP(g)",
        "ovh BSP(m)",
        "ovh g/m",
        "total BSP(g)",
        "total BSP(m)",
        "all delivered?",
    ]);
    for ((k, rate), (o, events)) in grid.into_iter().zip(outcomes) {
        for ev in events {
            global.record(ev);
        }
        t.row(vec![
            k.to_string(),
            fmt(rate),
            o.checkpoints.to_string(),
            o.rollbacks.to_string(),
            o.replayed_supersteps.to_string(),
            fmt(o.overhead.bsp_g),
            fmt(o.overhead.bsp_m_exp),
            fmt(o.overhead.bsp_g / o.overhead.bsp_m_exp.max(1.0)),
            fmt(o.total.bsp_g),
            fmt(o.total.bsp_m_exp),
            if o.gave_up {
                "GAVE UP".to_string()
            } else if o.recovery.delivered_all {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\n(φc = 0 rows price pure checkpointing — no rollbacks, so their overhead is\n\
         checkpoint writes alone and the BSP(g)/BSP(m) gap in the overhead columns is\n\
         entirely the h-relation cost of state I/O under local vs. global bandwidth.\n\
         Larger k amortizes that write cost; larger φc pays for it in replayed work —\n\
         until k outgrows the crash-free intervals and recovery livelocks: the\n\
         gave-up row is the driver's rollback bound refusing to thrash forever.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crashes_report_shape() {
        let r = crashes(true);
        // Every point recovers except the deliberately thrashing corner
        // (largest k × hottest rate), where the rollback bound fires.
        assert_eq!(
            r.matches("yes").count(),
            INTERVALS.len() * RATES.len() - 1,
            "exactly one sweep point gives up:\n{r}"
        );
        assert_eq!(r.matches("GAVE UP").count(), 1, "{r}");
        assert!(r.contains("ovh g/m"), "{r}");
    }

    #[test]
    fn same_seed_reports_are_identical_and_seeds_matter() {
        let a = crashes_seeded(true, 7);
        let b = crashes_seeded(true, 7);
        assert_eq!(a, b);
        let c = crashes_seeded(true, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn overhead_shows_the_local_global_separation() {
        // Price one sweep point directly: the checkpoint-write h-relations
        // must cost strictly more under the local restriction than the
        // global one — the non-trivial BSP(g)/BSP(m) gap the table prints.
        let p = 64;
        let params = MachineParams::from_gap(p, 8, 16);
        let wl = workload::single_hot_sender(p, (p as u64) * 8, 4, 2);
        let o = run_with_checkpointed_recovery_to(
            Arc::new(NullSink),
            &wl,
            &UnbalancedSend::new(0.3),
            params,
            11,
            None,
            &RecoveryConfig::default(),
            &CheckpointConfig::every(1),
        );
        assert!(o.checkpoints > 1);
        assert!(
            o.overhead.bsp_g > 1.5 * o.overhead.bsp_m_exp,
            "BSP(g) overhead {} vs BSP(m) {}",
            o.overhead.bsp_g,
            o.overhead.bsp_m_exp
        );
    }
}
