//! The experiment suite. Each submodule exposes `run(quick) -> String`
//! returning a rendered report; the `reproduce` binary concatenates them.

pub mod crashes;
pub mod dynamics;
pub mod extensions;
pub mod faults;
pub mod scheduling;
pub mod separations;
pub mod sorting;

/// All experiment ids in presentation order.
pub const ALL: &[&str] = &[
    "table1",
    "broadcast-lb",
    "gvsm-routing",
    "unbalanced-send",
    "consecutive-send",
    "granular-send",
    "flits",
    "overhead",
    "penalty-ablation",
    "whp-phase",
    "preamble",
    "dynamic",
    "mg1",
    "faults",
    "crashes",
    "sorting",
    "cr-sim",
    "leader",
    "hrel-crcw",
    "hrel-randomized",
    "qsm-exercise",
    "collectives",
    "list-ranking-ablation",
    "sorting-ablation",
    "sensitivity-audit",
];

/// Dispatch one experiment by id (default fault seed).
pub fn run(id: &str, quick: bool) -> Option<String> {
    run_seeded(id, quick, 7)
}

/// Dispatch one experiment by id with an explicit seed. Only the seeded
/// experiments (currently `faults`, `crashes` and `sorting`) consume it;
/// the rest have their seeds pinned in-line so every report is
/// reproducible regardless.
pub fn run_seeded(id: &str, quick: bool, seed: u64) -> Option<String> {
    Some(match id {
        "faults" => faults::faults_seeded(quick, seed),
        "crashes" => crashes::crashes_seeded(quick, seed),
        "sorting" => sorting::sorting_seeded(quick, seed),
        "table1" => separations::table1(quick),
        "broadcast-lb" => separations::broadcast_lb(quick),
        "gvsm-routing" => separations::gvsm_routing(quick),
        "cr-sim" => separations::cr_sim(quick),
        "leader" => separations::leader(quick),
        "hrel-crcw" => separations::hrel_crcw(quick),
        "preamble" => separations::preamble(quick),
        "unbalanced-send" => scheduling::unbalanced_send(quick),
        "consecutive-send" => scheduling::consecutive_send(quick),
        "granular-send" => scheduling::granular_send(quick),
        "flits" => scheduling::flits(quick),
        "overhead" => scheduling::overhead(quick),
        "penalty-ablation" => scheduling::penalty_ablation(quick),
        "whp-phase" => scheduling::whp_phase(quick),
        "dynamic" => dynamics::dynamic(quick),
        "mg1" => dynamics::mg1(quick),
        "hrel-randomized" => extensions::hrel_randomized(quick),
        "qsm-exercise" => extensions::qsm_exercise(quick),
        "collectives" => extensions::collectives_exp(quick),
        "list-ranking-ablation" => extensions::list_ranking_ablation(quick),
        "sorting-ablation" => extensions::sorting_ablation(quick),
        "sensitivity-audit" => extensions::sensitivity_audit(quick),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_dispatches() {
        for id in ALL {
            assert!(run(id, true).is_some(), "{id} missing");
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("nope", true).is_none());
    }
}
