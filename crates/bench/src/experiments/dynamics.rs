//! Experiments for Section 6.2: the dynamic stability phase diagram
//! (Theorems 6.5/6.7) and the M/G/1 reduction (Claim 6.8).

use crate::table::{fmt, Table};
use pbw_adversary::mg1::{simulate_mg1, ServiceLaw};
use pbw_adversary::{
    AlgorithmB, AqtParams, BspGIntervalRouter, SingleTargetAdversary, SteadyAdversary,
};
use pbw_models::bounds;

/// The stability phase diagram: BSP(g) collapses past β = 1/g while
/// Algorithm B on the BSP(m) absorbs the same traffic, up to the global
/// capacity.
pub fn dynamic(quick: bool) -> String {
    let p = 64usize;
    let g = 8u64;
    let m = (p as u64 / g) as usize; // 8
    let w = 64u64;
    let intervals = if quick { 200 } else { 800 };
    let mut out = String::new();
    out.push_str(&format!(
        "== Dynamic routing stability (Thms 6.5/6.7): p = {p}, g = {g}, m = {m}, w = {w} ==\n"
    ));
    out.push_str(&format!(
        "BSP(g) threshold: β ≤ 1/g = {}; BSP(m) global threshold ≈ m/(1+ε)\n\n",
        fmt(bounds::dynamic_bsp_g_beta_threshold(g))
    ));

    // Sweep β around 1/g with the single-target adversary of Thm 6.5.
    let mut t = Table::new(vec![
        "β (×1/g)",
        "adversary",
        "BSP(g) growth/interval",
        "BSP(g) verdict",
        "BSP(m) growth/interval",
        "BSP(m) verdict",
    ]);
    for beta_mult in [0.5, 0.9, 1.5, 3.0] {
        let beta = beta_mult / g as f64;
        let params = AqtParams {
            w,
            alpha: beta,
            beta,
        };
        let mut adv_g = SingleTargetAdversary::new(p, params, 0);
        let router_g = BspGIntervalRouter { p, g, l: 8, w };
        let tg = router_g.run(&mut adv_g, intervals);
        let mut adv_m = SingleTargetAdversary::new(p, params, 0);
        let algo_m = AlgorithmB {
            p,
            m,
            w,
            eps: 0.3,
            seed: 5,
        };
        let tm = algo_m.run(&mut adv_m, intervals);
        t.row(vec![
            fmt(beta_mult),
            "single-target".to_string(),
            fmt(tg.backlog_growth()),
            if tg.looks_stable() {
                "stable".into()
            } else {
                "UNSTABLE".to_string()
            },
            fmt(tm.backlog_growth()),
            if tm.looks_stable() {
                "stable".into()
            } else {
                "UNSTABLE".to_string()
            },
        ]);
    }
    out.push_str(&t.render());

    // Sweep global rate α against the BSP(m) capacity with steady traffic.
    out.push('\n');
    let mut t2 = Table::new(vec![
        "α (×m)",
        "adversary",
        "BSP(m) growth/interval",
        "verdict",
        "mean batch service",
        "p99 delay (intervals)",
    ]);
    for alpha_mult in [0.25, 0.6, 0.75, 1.5] {
        let alpha = alpha_mult * m as f64;
        let params = AqtParams {
            w,
            alpha,
            beta: 0.5,
        };
        let mut adv = SteadyAdversary::new(p, params);
        let algo = AlgorithmB {
            p,
            m,
            w,
            eps: 0.3,
            seed: 9,
        };
        let tr = algo.run(&mut adv, intervals);
        t2.row(vec![
            fmt(alpha_mult),
            "steady".to_string(),
            fmt(tr.backlog_growth()),
            if tr.looks_stable() {
                "stable".into()
            } else {
                "UNSTABLE".to_string()
            },
            fmt(tr.mean_service()),
            tr.delay_percentile(0.99)
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str(&t2.render());

    // Theorem 6.7's constants, calibrated empirically for Unbalanced-Send.
    let cal = pbw_adversary::thresholds::calibrate(p, m, 0.3, w as f64, 40, 4 * w, 7);
    out.push_str(&format!(
        "\nThm 6.7 calibration for A = Unbalanced-Send(0.3): a = {:.2}, b = {:.2}, r = {:.3},\n u = {:.0} → derived thresholds α* = {:.2} (global), β* = {:.3} (local)\n",
        cal.a, cal.b, cal.r, cal.u, cal.alpha_star, cal.beta_star
    ));
    out.push_str("\n(BSP(g) destabilizes just past β = 1/g; Algorithm B routes local rates far\n beyond 1/g and is limited only by the aggregate capacity m/(1+ε).)\n");
    out
}

/// Claim 6.8: the dominating M/G/1 system — simulation vs the
/// Pollaczek–Khinchine closed form, stability at 1.21·r·w/u < 1.
pub fn mg1(quick: bool) -> String {
    let steps = if quick { 200_000 } else { 2_000_000 };
    let mut out = String::new();
    out.push_str("== M/G/1 reduction (Claim 6.8): service S₀'' = k·w/u w.p. 1/k⁴−1/(k+1)⁴ ==\n");
    let mut t = Table::new(vec![
        "r",
        "w",
        "u",
        "1.21·r·w/u",
        "mean queue (sim)",
        "P-K formula",
        "verdict",
    ]);
    for (r, w, u) in [
        (0.05, 10.0, 4.0),
        (0.15, 10.0, 4.0),
        (0.25, 6.0, 3.0),
        (0.35, 8.0, 2.0),
    ] {
        let law = ServiceLaw { w, u };
        let util = bounds::mg1_utilization(r, w, u);
        let sim = simulate_mg1(r, law, steps, 17);
        let (m1, m2) = law.moments(100_000);
        let pk = if r * m1 < 1.0 {
            fmt(bounds::mg1_mean_queue(r, m1, m2))
        } else {
            "unstable".to_string()
        };
        t.row(vec![
            fmt(r),
            fmt(w),
            fmt(u),
            fmt(util),
            fmt(sim.mean_queue_at_departures),
            pk,
            if util < 1.0 {
                "stable".into()
            } else {
                "UNSTABLE".to_string()
            },
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\n(Simulated departure-instant queues track the Pollaczek–Khinchine prediction;\n the 1.21·r·w/u < 1 criterion marks the stability frontier.)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_phase_diagram_shape() {
        let r = dynamic(true);
        // BSP(g) must be unstable somewhere above the threshold and
        // Algorithm B must remain stable on the single-target rows.
        assert!(r.contains("UNSTABLE"), "{r}");
        let single_target_rows: Vec<&str> =
            r.lines().filter(|l| l.contains("single-target")).collect();
        assert_eq!(single_target_rows.len(), 4);
        for row in &single_target_rows {
            // The BSP(m) verdict (last column) must be stable.
            assert!(row.trim_end().ends_with("stable"), "{row}");
        }
    }

    #[test]
    fn mg1_report_has_stable_and_unstable() {
        let r = mg1(true);
        assert!(r.contains("stable"));
        assert!(r.contains("UNSTABLE"));
    }
}
