//! Minimal aligned text tables for experiment output.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float compactly for table cells.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e6 {
        format!("{x:.2e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("---"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_bad_width() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.5), "0.500");
        assert_eq!(fmt(3.25), "3.2");
        assert_eq!(fmt(1234.0), "1234");
        assert_eq!(fmt(2.5e7), "2.50e7");
    }
}
