//! # parallel-bandwidth
//!
//! A Rust reproduction of the SPAA'97 paper *"Modeling Parallel Bandwidth:
//! Local vs. Global Restrictions"* (Adler, Gibbons, Matias, Ramachandran).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`models`] — BSP(g)/BSP(m)/QSM(g)/QSM(m) cost semantics, overload
//!   penalty functions and every closed-form bound quoted in the paper.
//! * [`sim`] — an executable bulk-synchronous simulator (rayon-parallel over
//!   simulated processors) with exact cost accounting under all models.
//! * [`pram`] — a PRAM-family simulator (EREW/CREW/QRQW/CRCW, PRAM(m)+ROM)
//!   with access-mode enforcement and the Section 4.1 h-relation realization.
//! * [`sched`] — the paper's primary contribution: randomized scheduling of
//!   unknown, arbitrarily-unbalanced h-relations under a global bandwidth
//!   limit (Unbalanced-Send and its consecutive / granular / flit / overhead
//!   variants), plus the offline optimal baseline.
//! * [`algos`] — Section 4/5 problem algorithms: broadcast (including the
//!   ternary non-receipt trick), one-to-all, parity/summation, prefix sums,
//!   list ranking, sorting, leader recognition and the concurrent-read
//!   simulation of Theorem 5.1.
//! * [`adversary`] — Section 6.2: Adversarial Queuing Theory adversaries,
//!   the dynamic routing Algorithm B, stability traces and M/G/1 analysis.
//! * [`trace`] — superstep cost-trace observability: every engine emits one
//!   structured event per superstep (profile, per-model term breakdown,
//!   per-slot penalties, fault counters) into a pluggable sink — `NullSink`
//!   (default, zero-cost), `RecordingSink` (tests), or a JSON-lines exporter
//!   (`reproduce --trace <path>`).
//! * [`faults`] — seeded, deterministic fault injection (drops,
//!   duplications, delays, slot displacement, processor stalls, crash-stop
//!   processor failures) for the [`sim`] engines, paired with the
//!   ack/retransmit recovery protocol and superstep-consistent
//!   checkpoint/rollback in [`sched`]'s `recovery` module and router
//!   backpressure in [`adversary`].
//!
//! ## Quickstart
//!
//! ```
//! use parallel_bandwidth::models::{MachineParams, PenaltyFn};
//! use parallel_bandwidth::sched::{workload, UnbalancedSend, Scheduler, evaluate_schedule};
//!
//! // A 512-processor machine with aggregate bandwidth m = 32 (so g = 16).
//! let mp = MachineParams::from_bandwidth(512, 32, 16);
//!
//! // A skewed h-relation: processor 0 wants to send 4096 messages,
//! // everyone else 8.
//! let wl = workload::single_hot_sender(mp.p, 4096, 8, 0xC0FFEE);
//!
//! // Schedule it with Unbalanced-Send (Theorem 6.2) and price the schedule
//! // under the exponential overload penalty.
//! let plan = UnbalancedSend::new(0.2).schedule(&wl, mp.m, 42);
//! let cost = evaluate_schedule(&plan, &wl, mp.m, PenaltyFn::Exponential);
//! assert!(cost.no_slot_exceeds_m); // w.h.p. the bandwidth limit is respected
//! ```

/// Frequently used items in one import: `use parallel_bandwidth::prelude::*;`
pub mod prelude {
    pub use pbw_adversary::{
        Adversary, AlgorithmB, AqtParams, BackpressureConfig, ShedPolicy, SteadyAdversary,
    };
    pub use pbw_core::schedulers::{
        EagerSend, OfflineOptimal, Scheduler, UnbalancedConsecutiveSend, UnbalancedGranularSend,
        UnbalancedSend,
    };
    pub use pbw_core::{
        evaluate_schedule, run_with_checkpointed_recovery, run_with_recovery, validate_schedule,
        workload, CheckpointConfig, CheckpointedOutcome, RecoveryConfig, RecoveryOutcome,
        RecoveryPhase, RecoverySession, Schedule, SessionCheckpoint, Workload,
    };
    pub use pbw_faults::{
        CrashWindow, FaultPlan, FaultScript, FaultSpec, StallWindow, WindowError,
    };
    pub use pbw_models::{
        BspG, BspM, CostModel, MachineParams, PenaltyFn, QsmG, QsmM, SuperstepProfile,
    };
    pub use pbw_sim::{BspMachine, CostSummary, DeliveryHook, Fate, FaultStats, QsmMachine};
    pub use pbw_trace::{
        FaultCounters, JsonlSink, NullSink, RecordingSink, TraceEvent, TraceSink, TraceSource,
    };
}

pub use pbw_adversary as adversary;
pub use pbw_algos as algos;
pub use pbw_core as sched;
pub use pbw_faults as faults;
pub use pbw_models as models;
pub use pbw_pram as pram;
pub use pbw_sim as sim;
pub use pbw_trace as trace;
