//! Fault-injection and recovery integration tests: the conservation
//! invariant must hold for *every* seeded `FaultPlan` (proptest), same-seed
//! runs must replay bit-identically, and the φ = 0 recovery path must be
//! cost-identical to the reliable direct execution.

use parallel_bandwidth::models::MachineParams;
use parallel_bandwidth::prelude::*;
use parallel_bandwidth::sched::exec::run_schedule_on_bsp;
use parallel_bandwidth::trace::TraceEvent;
use proptest::prelude::*;
use std::sync::Arc;

/// Drive a hooked 8-processor machine: every processor sends `fanout`
/// messages in superstep 0, then the machine idles until nothing is in
/// flight. Returns the final fault ledger and the recorded trace.
fn run_hooked(plan: FaultPlan, fanout: u64, extra_steps: u64) -> (FaultStats, Vec<TraceEvent>) {
    let params = MachineParams::from_gap(8, 4, 4);
    let sink = Arc::new(parallel_bandwidth::trace::RecordingSink::new());
    let mut machine: BspMachine<(), u64> = BspMachine::new(params, |_| ());
    machine.set_sink(sink.clone()).set_trace_label("fault-prop");
    machine.set_delivery_hook(Arc::new(plan));
    let p = params.p;
    machine.superstep(|pid, _s, _in, out| {
        for k in 0..fanout {
            out.send((pid + 1 + k as usize) % p, k);
        }
    });
    for _ in 0..extra_steps {
        machine.superstep(|_pid, _s, _in, _out| {});
    }
    // Drain whatever the plan still holds in flight.
    while machine.faults_in_flight() > 0 {
        machine.superstep(|_pid, _s, _in, _out| {});
    }
    (machine.fault_stats(), sink.take())
}

fn spec_strategy() -> impl Strategy<Value = FaultSpec> {
    (
        0.0..0.24f64, // drop
        0.0..0.24f64, // duplicate
        0.0..0.24f64, // delay
        0.0..0.24f64, // displace
        0.0..0.3f64,  // stall
        1..4u32,      // max_delay
        1..8u64,      // max_displacement
    )
        .prop_map(|(dr, du, de, di, st, md, mx)| FaultSpec {
            drop_rate: dr,
            duplicate_rate: du,
            delay_rate: de,
            max_delay: md,
            displace_rate: di,
            max_displacement: mx,
            stall_rate: st,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `injected + duplicated == delivered + dropped + in_flight` for every
    /// seeded plan, at quiescence (where `in_flight == 0`, so the ISSUE's
    /// `injected == delivered + dropped + in_flight` form holds as well
    /// once spurious duplicates are accounted).
    #[test]
    fn every_seeded_plan_conserves_messages(
        spec in spec_strategy(),
        seed in any::<u64>(),
        fanout in 1..6u64,
    ) {
        let (stats, _) = run_hooked(FaultPlan::new(spec, seed), fanout, 2);
        prop_assert!(stats.conserved(), "ledger {stats:?}");
        prop_assert_eq!(stats.in_flight, 0);
        prop_assert_eq!(
            stats.injected + stats.duplicated,
            stats.delivered + stats.dropped
        );
    }

    /// Same fault seed ⇒ bit-identical run: every trace event (profiles,
    /// costs, fault counters) compares equal, and the rendered JSONL is
    /// byte-for-byte the same.
    #[test]
    fn same_fault_seed_replays_bit_identically(
        spec in spec_strategy(),
        seed in any::<u64>(),
    ) {
        let (s1, t1) = run_hooked(FaultPlan::new(spec, seed), 4, 2);
        let (s2, t2) = run_hooked(FaultPlan::new(spec, seed), 4, 2);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(&t1, &t2);
        let j1: Vec<String> = t1.iter().map(|e| e.to_json()).collect();
        let j2: Vec<String> = t2.iter().map(|e| e.to_json()).collect();
        prop_assert_eq!(j1, j2);
    }
}

/// φ = 0: the recovery harness must price identically to the plain
/// execution path — both with no hook at all and with an attached
/// all-zero-rate plan.
#[test]
fn zero_rate_recovery_is_bit_exact_with_direct_execution() {
    let params = MachineParams::from_gap(64, 8, 8);
    let wl = parallel_bandwidth::sched::workload::single_hot_sender(64, 512, 4, 2);
    let scheduler = UnbalancedSend::new(0.3);
    let sched = scheduler.schedule(&wl, params.m, 11);
    let direct = run_schedule_on_bsp(&wl, &sched, params);

    let cfg = RecoveryConfig::default();
    let no_hook = run_with_recovery(&wl, &scheduler, params, 11, None, &cfg);
    assert_eq!(no_hook.summary, direct.summary);
    assert_eq!(no_hook.rounds, 0);

    let clean_plan: Arc<dyn DeliveryHook> = Arc::new(FaultPlan::new(FaultSpec::none(), 99));
    let hooked = run_with_recovery(&wl, &scheduler, params, 11, Some(clean_plan), &cfg);
    assert_eq!(hooked.summary, direct.summary);
    assert_eq!(hooked.resent_flits, 0);
    assert!(hooked.delivered_all);
}

/// Active-set frontier semantics (PR 5): a processor that schedules no
/// sends of its own must stay reachable through supersteps in which *no*
/// processor is declared active — both for a payload the fault layer is
/// holding (due delivery) and for a message already sitting in its inbox.
#[test]
fn due_and_retained_inboxes_reactivate_idle_processors_on_the_sparse_path() {
    use parallel_bandwidth::sim::DeliveryCtx;

    /// Delays everything sent in superstep 0 by two supersteps.
    struct SlowStart;
    impl DeliveryHook for SlowStart {
        fn fate(&self, ctx: &DeliveryCtx) -> Fate {
            if ctx.superstep == 0 {
                Fate::Delay(2)
            } else {
                Fate::Deliver
            }
        }
    }

    let params = MachineParams::from_gap(64, 8, 4);
    let mut machine: BspMachine<Vec<u64>, u64> = BspMachine::new(params, |_| Vec::new());
    machine.set_delivery_hook(Arc::new(SlowStart));

    // Superstep 0: only pid 3 is active; its message to pid 40 is delayed.
    machine.superstep_active(&[3], |pid, _s, _in, out| {
        if pid == 3 {
            out.send(40, 7);
        }
    });
    let drain = |_pid: usize,
                 s: &mut Vec<u64>,
                 inbox: &[u64],
                 _out: &mut parallel_bandwidth::sim::Outbox<u64>| {
        s.extend_from_slice(inbox);
    };
    // Supersteps 1..: nobody is declared active. The due delivery must
    // land in pid 40's arena and pid 40 must then be woken to consume the
    // *retained* inbox, with no dense pass and no explicit declaration.
    for _ in 0..4 {
        machine.superstep_active(&[], drain);
    }
    assert_eq!(machine.state(40), &vec![7]);
    assert_eq!(machine.fault_stats().delivered, 1);
    assert_eq!(machine.fault_stats().in_flight, 0);
}

/// Active-set recovery (PR 5): `run_with_recovery` now routes every
/// superstep through the sparse path when the sender set is small. A
/// single-sender workload on a 64-processor machine whose first attempt is
/// dropped exercises the full loop — ack supersteps whose only senders are
/// the destinations that heard something, idle backoff supersteps with an
/// empty declared set, and a retransmission round that re-activates the
/// otherwise-idle source — and must still deliver everything with a
/// conserved ledger, bit-identically across repeat runs.
#[test]
fn retransmission_rounds_reactivate_idle_senders_on_the_sparse_path() {
    use parallel_bandwidth::sim::DeliveryCtx;

    /// Drops every copy of src 0's flits in superstep 0 only.
    struct DropFirstAttempt;
    impl DeliveryHook for DropFirstAttempt {
        fn fate(&self, ctx: &DeliveryCtx) -> Fate {
            if ctx.superstep == 0 && ctx.src == 0 {
                Fate::Drop
            } else {
                Fate::Deliver
            }
        }
    }

    let params = MachineParams::from_gap(64, 8, 4);
    // Only processor 0 sends: 6 unit messages. active/p = 1/64, well under
    // the density cutoff, so every send superstep takes the sparse path.
    let wl = parallel_bandwidth::sched::workload::single_hot_sender(64, 6, 0, 21);
    assert_eq!(wl.active_senders(), vec![0]);
    let cfg = RecoveryConfig::default();
    let run = || {
        run_with_recovery(
            &wl,
            &OfflineOptimal,
            params,
            13,
            Some(Arc::new(DropFirstAttempt)),
            &cfg,
        )
    };
    let out = run();
    assert!(out.delivered_all, "retransmission never reached the source");
    assert_eq!(out.rounds, 1);
    assert_eq!(out.resent_flits, wl.n_flits());
    assert_eq!(out.arrival_steps.len() as u64, wl.n_flits());
    assert!(out.fault_stats.conserved());
    // Determinism across repeat runs of the sparse recovery loop.
    let again = run();
    assert_eq!(out.summary, again.summary);
    assert_eq!(out.arrival_steps, again.arrival_steps);
    assert_eq!(out.fault_stats, again.fault_stats);
}

/// Lossy recovery delivers everything for moderate φ and the two fault
/// seeds diverge (the plan actually bites).
#[test]
fn lossy_recovery_delivers_and_seeds_matter() {
    let params = MachineParams::from_gap(64, 8, 8);
    let wl = parallel_bandwidth::sched::workload::uniform_random(64, 16, 3);
    let scheduler = UnbalancedSend::new(0.3);
    let cfg = RecoveryConfig::default();

    let run = |fault_seed: u64| {
        let plan: Arc<dyn DeliveryHook> =
            Arc::new(FaultPlan::new(FaultSpec::drop_only(0.2), fault_seed));
        run_with_recovery(&wl, &scheduler, params, 11, Some(plan), &cfg)
    };
    let a = run(1);
    assert!(a.delivered_all);
    assert!(a.rounds >= 1);
    assert!(a.resent_flits > 0);
    assert!(a.summary.bsp_m_exp > 0.0);

    let b = run(2);
    assert!(b.delivered_all);
    // Different seeds drop different flits: the recovery transcripts differ.
    assert!(
        a.resent_flits != b.resent_flits || a.arrival_steps != b.arrival_steps,
        "seeds 1 and 2 produced identical recoveries"
    );
}
