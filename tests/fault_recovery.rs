//! Fault-injection and recovery integration tests: the conservation
//! invariant must hold for *every* seeded `FaultPlan` (proptest), same-seed
//! runs must replay bit-identically, and the φ = 0 recovery path must be
//! cost-identical to the reliable direct execution.

mod common;

use common::{run_hooked, spec_strategy};
use parallel_bandwidth::models::MachineParams;
use parallel_bandwidth::prelude::*;
use parallel_bandwidth::sched::exec::run_schedule_on_bsp;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `injected + duplicated + restored == delivered + dropped + crashed
    /// + in_flight` for every seeded plan, at quiescence (where
    /// `in_flight == 0`; plain engine runs never roll back, so `restored`
    /// stays 0 and crash-stop losses land in `crashed`).
    #[test]
    fn every_seeded_plan_conserves_messages(
        spec in spec_strategy(),
        seed in any::<u64>(),
        fanout in 1..6u64,
    ) {
        let (stats, _) = run_hooked(FaultPlan::new(spec, seed), fanout, 2);
        prop_assert!(stats.conserved(), "ledger {stats:?}");
        prop_assert_eq!(stats.in_flight, 0);
        prop_assert_eq!(stats.restored, 0);
        prop_assert_eq!(
            stats.injected + stats.duplicated,
            stats.delivered + stats.dropped + stats.crashed
        );
    }

    /// Same fault seed ⇒ bit-identical run: every trace event (profiles,
    /// costs, fault counters) compares equal, and the rendered JSONL is
    /// byte-for-byte the same.
    #[test]
    fn same_fault_seed_replays_bit_identically(
        spec in spec_strategy(),
        seed in any::<u64>(),
    ) {
        let (s1, t1) = run_hooked(FaultPlan::new(spec, seed), 4, 2);
        let (s2, t2) = run_hooked(FaultPlan::new(spec, seed), 4, 2);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(&t1, &t2);
        let j1: Vec<String> = t1.iter().map(|e| e.to_json()).collect();
        let j2: Vec<String> = t2.iter().map(|e| e.to_json()).collect();
        prop_assert_eq!(j1, j2);
    }
}

/// φ = 0: the recovery harness must price identically to the plain
/// execution path — both with no hook at all and with an attached
/// all-zero-rate plan.
#[test]
fn zero_rate_recovery_is_bit_exact_with_direct_execution() {
    let params = MachineParams::from_gap(64, 8, 8);
    let wl = parallel_bandwidth::sched::workload::single_hot_sender(64, 512, 4, 2);
    let scheduler = UnbalancedSend::new(0.3);
    let sched = scheduler.schedule(&wl, params.m, 11);
    let direct = run_schedule_on_bsp(&wl, &sched, params);

    let cfg = RecoveryConfig::default();
    let no_hook = run_with_recovery(&wl, &scheduler, params, 11, None, &cfg);
    assert_eq!(no_hook.summary, direct.summary);
    assert_eq!(no_hook.rounds, 0);

    let clean_plan: Arc<dyn DeliveryHook> = Arc::new(FaultPlan::new(FaultSpec::none(), 99));
    let hooked = run_with_recovery(&wl, &scheduler, params, 11, Some(clean_plan), &cfg);
    assert_eq!(hooked.summary, direct.summary);
    assert_eq!(hooked.resent_flits, 0);
    assert!(hooked.delivered_all);
}

/// Active-set frontier semantics (PR 5): a processor that schedules no
/// sends of its own must stay reachable through supersteps in which *no*
/// processor is declared active — both for a payload the fault layer is
/// holding (due delivery) and for a message already sitting in its inbox.
#[test]
fn due_and_retained_inboxes_reactivate_idle_processors_on_the_sparse_path() {
    use parallel_bandwidth::sim::DeliveryCtx;

    /// Delays everything sent in superstep 0 by two supersteps.
    struct SlowStart;
    impl DeliveryHook for SlowStart {
        fn fate(&self, ctx: &DeliveryCtx) -> Fate {
            if ctx.superstep == 0 {
                Fate::Delay(2)
            } else {
                Fate::Deliver
            }
        }
    }

    let params = MachineParams::from_gap(64, 8, 4);
    let mut machine: BspMachine<Vec<u64>, u64> = BspMachine::new(params, |_| Vec::new());
    machine.set_delivery_hook(Arc::new(SlowStart));

    // Superstep 0: only pid 3 is active; its message to pid 40 is delayed.
    machine.superstep_active(&[3], |pid, _s, _in, out| {
        if pid == 3 {
            out.send(40, 7);
        }
    });
    let drain = |_pid: usize,
                 s: &mut Vec<u64>,
                 inbox: &[u64],
                 _out: &mut parallel_bandwidth::sim::Outbox<u64>| {
        s.extend_from_slice(inbox);
    };
    // Supersteps 1..: nobody is declared active. The due delivery must
    // land in pid 40's arena and pid 40 must then be woken to consume the
    // *retained* inbox, with no dense pass and no explicit declaration.
    for _ in 0..4 {
        machine.superstep_active(&[], drain);
    }
    assert_eq!(machine.state(40), &vec![7]);
    assert_eq!(machine.fault_stats().delivered, 1);
    assert_eq!(machine.fault_stats().in_flight, 0);
}

/// Active-set recovery (PR 5): `run_with_recovery` now routes every
/// superstep through the sparse path when the sender set is small. A
/// single-sender workload on a 64-processor machine whose first attempt is
/// dropped exercises the full loop — ack supersteps whose only senders are
/// the destinations that heard something, idle backoff supersteps with an
/// empty declared set, and a retransmission round that re-activates the
/// otherwise-idle source — and must still deliver everything with a
/// conserved ledger, bit-identically across repeat runs.
#[test]
fn retransmission_rounds_reactivate_idle_senders_on_the_sparse_path() {
    use parallel_bandwidth::sim::DeliveryCtx;

    /// Drops every copy of src 0's flits in superstep 0 only.
    struct DropFirstAttempt;
    impl DeliveryHook for DropFirstAttempt {
        fn fate(&self, ctx: &DeliveryCtx) -> Fate {
            if ctx.superstep == 0 && ctx.src == 0 {
                Fate::Drop
            } else {
                Fate::Deliver
            }
        }
    }

    let params = MachineParams::from_gap(64, 8, 4);
    // Only processor 0 sends: 6 unit messages. active/p = 1/64, well under
    // the density cutoff, so every send superstep takes the sparse path.
    let wl = parallel_bandwidth::sched::workload::single_hot_sender(64, 6, 0, 21);
    assert_eq!(wl.active_senders(), vec![0]);
    let cfg = RecoveryConfig::default();
    let run = || {
        run_with_recovery(
            &wl,
            &OfflineOptimal,
            params,
            13,
            Some(Arc::new(DropFirstAttempt)),
            &cfg,
        )
    };
    let out = run();
    assert!(out.delivered_all, "retransmission never reached the source");
    assert_eq!(out.rounds, 1);
    assert_eq!(out.resent_flits, wl.n_flits());
    assert_eq!(out.arrival_steps.len() as u64, wl.n_flits());
    assert!(out.fault_stats.conserved());
    // Determinism across repeat runs of the sparse recovery loop.
    let again = run();
    assert_eq!(out.summary, again.summary);
    assert_eq!(out.arrival_steps, again.arrival_steps);
    assert_eq!(out.fault_stats, again.fault_stats);
}

/// Lossy recovery delivers everything for moderate φ and the two fault
/// seeds diverge (the plan actually bites).
#[test]
fn lossy_recovery_delivers_and_seeds_matter() {
    let params = MachineParams::from_gap(64, 8, 8);
    let wl = parallel_bandwidth::sched::workload::uniform_random(64, 16, 3);
    let scheduler = UnbalancedSend::new(0.3);
    let cfg = RecoveryConfig::default();

    let run = |fault_seed: u64| {
        let plan: Arc<dyn DeliveryHook> =
            Arc::new(FaultPlan::new(FaultSpec::drop_only(0.2), fault_seed));
        run_with_recovery(&wl, &scheduler, params, 11, Some(plan), &cfg)
    };
    let a = run(1);
    assert!(a.delivered_all);
    assert!(a.rounds >= 1);
    assert!(a.resent_flits > 0);
    assert!(a.summary.bsp_m_exp > 0.0);

    let b = run(2);
    assert!(b.delivered_all);
    // Different seeds drop different flits: the recovery transcripts differ.
    assert!(
        a.resent_flits != b.resent_flits || a.arrival_steps != b.arrival_steps,
        "seeds 1 and 2 produced identical recoveries"
    );
}

/// Checker-shaped historical regression: a drop pattern whose recovery
/// round lands inside a stalled window. Under seed 0 the first attempt
/// loses one data flit, so round 1 retransmits at superstep 3 — exactly
/// where a scripted [`StallWindow`] silences the sender. The stalled
/// retransmission must cost one *wasted* round (the engine skips the
/// sender's closure; nothing reaches the wire), after which round 2
/// delivers. The protocol may never deadlock, drop the flit on the floor,
/// or misprice the backoff schedule because a round was swallowed whole.
///
/// The timeline is pinned exactly (the plan is seeded and pure), so any
/// change to stall handling, retransmission scheduling, or the backoff
/// accounting shows up as a concrete diff, not a flake.
#[test]
fn retransmission_round_landing_in_a_stalled_window_costs_one_extra_round() {
    let params = MachineParams::from_gap(64, 8, 4);
    let wl = parallel_bandwidth::sched::workload::single_hot_sender(64, 6, 0, 21);
    let cfg = RecoveryConfig::default();
    let run = |stall: Option<StallWindow>| {
        let plan = FaultPlan::new(FaultSpec::drop_only(0.35), 0);
        let plan = match stall {
            Some(w) => plan.with_stall_window(w),
            None => plan,
        };
        run_with_recovery(&wl, &OfflineOptimal, params, 13, Some(Arc::new(plan)), &cfg)
    };

    // Baseline: seed 0 drops one data flit; one round repairs it by step 4.
    let clean = run(None);
    assert!(clean.delivered_all);
    assert_eq!(clean.rounds, 1);
    assert_eq!(clean.resent_flits, 1);
    assert_eq!(clean.arrival_steps, vec![1, 1, 1, 1, 1, 4]);
    assert_eq!(clean.fault_stats.stalled_steps, 0);

    // Timeline with `charge_acks`: send@0, ack@1, backoff@2, retransmit@3.
    // Stall the sender exactly at superstep 3: the round-1 retransmission
    // is swallowed, round 2 (ack@4, backoff@5-6, retransmit@7) repairs it.
    let window = StallWindow::new(0, 3, 1).expect("non-empty window");
    let stalled = run(Some(window));
    assert!(
        stalled.delivered_all,
        "stalled retransmission was lost for good"
    );
    assert!(stalled.fault_stats.conserved(), "{:?}", stalled.fault_stats);
    assert_eq!(stalled.fault_stats.in_flight, 0);
    assert_eq!(stalled.fault_stats.stalled_steps, 1);
    assert_eq!(
        stalled.rounds, 2,
        "the swallowed round must be retried, once"
    );
    // The residual flit is *scheduled* twice: once into the stalled window,
    // once in the round that lands.
    assert_eq!(stalled.resent_flits, 2);
    // Backoff is still priced per started round: 1 + 2, never elided.
    assert_eq!(stalled.backoff_supersteps, 3);
    assert_eq!(stalled.arrival_steps, vec![1, 1, 1, 1, 1, 8]);

    // The whole outcome replays bit-identically.
    let again = run(Some(window));
    assert_eq!(stalled.summary, again.summary);
    assert_eq!(stalled.arrival_steps, again.arrival_steps);
    assert_eq!(stalled.fault_stats, again.fault_stats);
}

// ---------------------------------------------------------------------------
// Sample sort under the fault zoo (PR 8). Sample sort is lockstep — every
// message matters — so its recovery driver rolls back on *any* ledger
// movement, not just crashes. The zoo rates here are scaled to the
// algorithm's per-superstep message volume (the exchange carries n
// messages at once), keeping the per-step clean probability high enough
// for the geometric retry to converge well inside the rollback budget.
// ---------------------------------------------------------------------------

/// The scaled fault-zoo matrix sample sort soaks under: every fault class
/// at once in three intensities, plus a crash-dominated mix.
fn sample_sort_zoo() -> Vec<FaultSpec> {
    let full = |scale: f64| FaultSpec {
        drop_rate: 0.004 * scale,
        duplicate_rate: 0.003 * scale,
        delay_rate: 0.004 * scale,
        max_delay: 2,
        displace_rate: 0.003 * scale,
        max_displacement: 2,
        stall_rate: 0.01 * scale,
        crash_rate: 0.005 * scale,
        max_crash_len: 2,
    };
    vec![
        full(0.25),
        full(0.5),
        full(1.0),
        FaultSpec {
            crash_rate: 0.02,
            max_crash_len: 2,
            drop_rate: 0.004,
            ..FaultSpec::none()
        },
    ]
}

/// Sample sort under `run_with_checkpointed_recovery` across the whole
/// zoo matrix: the output is still the sorted input, the monotone ledger
/// conserves, and the rollback bound holds.
#[test]
fn sample_sort_recovers_sorted_under_the_full_zoo() {
    use parallel_bandwidth::algos::sample_sort::{
        keyset, run_with_checkpointed_recovery, KeyDist, SampleSortConfig, Sampling,
    };
    use parallel_bandwidth::sched::CheckpointConfig;

    let p = 8;
    let per = 8;
    let params = MachineParams::from_gap(p, 4, 4);
    let ck = CheckpointConfig {
        interval: 1,
        charge_state_io: false,
        max_rollbacks: 200,
    };
    for (i, spec) in sample_sort_zoo().into_iter().enumerate() {
        for s in 0..3u64 {
            let seed = (i as u64) * 100 + s * 13 + 1;
            let inputs = keyset(KeyDist::ALL[(i + s as usize) % 4], p * per, seed);
            let cfg = SampleSortConfig {
                ratio: 4,
                sampling: Sampling::Seeded,
                seed,
            };
            let hook: Arc<dyn DeliveryHook> = Arc::new(FaultPlan::new(spec, seed));
            let out = run_with_checkpointed_recovery(params, &inputs, cfg, hook, &ck);
            let ctx = format!("spec {spec:?} seed {seed}");
            assert!(!out.gave_up, "{ctx}: rollback budget exhausted");
            assert!(out.ok, "{ctx}: recovered output is not the sorted input");
            assert!(out.fault_stats.conserved(), "{ctx}: {:?}", out.fault_stats);
            assert!(out.rollbacks <= 200, "{ctx}");
            // Replays happen iff something was rolled back.
            assert_eq!(out.replayed_supersteps > 0, out.rollbacks > 0, "{ctx}");
        }
    }
}

/// A hook hot enough that no clean replay exists: the driver must give up
/// at its rollback bound instead of looping forever, and the ledger must
/// still conserve.
#[test]
fn sample_sort_recovery_gives_up_at_the_bound_under_saturation_loss() {
    use parallel_bandwidth::algos::sample_sort::{
        keyset, run_with_checkpointed_recovery, KeyDist, SampleSortConfig,
    };
    use parallel_bandwidth::sched::CheckpointConfig;

    let p = 8;
    let params = MachineParams::from_gap(p, 4, 4);
    let inputs = keyset(KeyDist::Uniform, p * 8, 5);
    let ck = CheckpointConfig {
        interval: 1,
        charge_state_io: false,
        max_rollbacks: 8,
    };
    let hook: Arc<dyn DeliveryHook> = Arc::new(FaultPlan::new(FaultSpec::drop_only(0.9), 5));
    let out =
        run_with_checkpointed_recovery(params, &inputs, SampleSortConfig::default(), hook, &ck);
    assert!(out.gave_up);
    assert!(!out.ok);
    assert_eq!(out.rollbacks, 8);
    assert!(out.fault_stats.conserved(), "{:?}", out.fault_stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The *raw* (no-recovery) sample sort under an arbitrary seeded fault
    /// plan: the run may be wrong, but the ledger always conserves and the
    /// same seed replays to the identical ledger and output.
    #[test]
    fn raw_sample_sort_under_any_plan_conserves_and_replays(
        spec in spec_strategy(),
        seed in any::<u64>(),
    ) {
        use parallel_bandwidth::algos::sample_sort::{
            keyset, run_opts, KeyDist, SampleSortConfig,
        };
        let p = 8;
        let params = MachineParams::from_gap(p, 4, 4);
        let inputs = keyset(KeyDist::Zipf, p * 8, seed);
        let cfg = SampleSortConfig::default();
        let hook: Arc<dyn DeliveryHook> = Arc::new(FaultPlan::new(spec, seed));
        let a = run_opts(params, &inputs, cfg, false, Some(hook.clone()), None);
        prop_assert!(a.fault_stats.conserved(), "ledger {:?}", a.fault_stats);
        let hook2: Arc<dyn DeliveryHook> = Arc::new(FaultPlan::new(spec, seed));
        let b = run_opts(params, &inputs, cfg, false, Some(hook2), None);
        prop_assert_eq!(a.fault_stats, b.fault_stats);
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.summary, b.summary);
    }
}
