//! Seeded chaos soak: the *entire* fault zoo at once — drops, duplicates,
//! delays, displacements, stalls and crash-stop outages — thrown at the
//! checkpointed recovery driver over a fixed seed matrix.
//!
//! Two tiers share one scenario body:
//!
//! * the always-on smoke tier walks a small seed matrix (scaled by
//!   `PBW_SOAK_SEEDS`, default 6 seeds per spec mix);
//! * the `#[ignore]`d heavy tier (run by `scripts/chaos_soak.sh` and the
//!   CI `chaos-soak` job) widens the matrix 8×.
//!
//! Every run asserts the soak invariants — the ledger conserves with the
//! crash/restore columns, termination is bounded, a delivering run
//! accounts for every flit — and every run is executed *twice*, diffing
//! the rendered JSONL trace streams byte-for-byte: chaos must be
//! replayable chaos, or no failure it finds is debuggable.

mod common;

use common::at_width;
use parallel_bandwidth::models::MachineParams;
use parallel_bandwidth::prelude::{FaultPlan, FaultSpec};
use parallel_bandwidth::sched::schedulers::OfflineOptimal;
use parallel_bandwidth::sched::{
    run_with_checkpointed_recovery_to, workload, CheckpointConfig, RecoveryConfig,
};
use parallel_bandwidth::trace::RecordingSink;
use std::sync::Arc;

/// Seeds per spec mix in the smoke tier (`PBW_SOAK_SEEDS` overrides).
fn soak_seeds() -> u64 {
    std::env::var("PBW_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(6)
}

/// The zoo mixes the soak rotates through: every fault class enabled at
/// once in three intensities, plus one crash-dominated mix.
fn spec_matrix() -> Vec<FaultSpec> {
    let full = |scale: f64| FaultSpec {
        drop_rate: 0.05 * scale,
        duplicate_rate: 0.04 * scale,
        delay_rate: 0.06 * scale,
        max_delay: 3,
        displace_rate: 0.04 * scale,
        max_displacement: 2,
        stall_rate: 0.03 * scale,
        crash_rate: 0.01 * scale,
        max_crash_len: 2,
    };
    vec![
        full(0.5),
        full(1.0),
        full(2.0),
        FaultSpec {
            crash_rate: 0.04,
            max_crash_len: 2,
            drop_rate: 0.02,
            ..FaultSpec::none()
        },
    ]
}

struct SoakRun {
    jsonl: Vec<String>,
    outcome: parallel_bandwidth::sched::CheckpointedOutcome,
}

/// One chaos run: checkpointed recovery under `spec`/`seed`, traced.
fn soak_once(spec: FaultSpec, seed: u64) -> SoakRun {
    let p = 16;
    let params = MachineParams::from_gap(p, 4, 8);
    let wl = workload::uniform_random(p, 3, seed ^ 0xC0FFEE);
    let cfg = RecoveryConfig::default();
    let ck = CheckpointConfig {
        interval: 2,
        charge_state_io: true,
        max_rollbacks: 64,
    };
    let sink = Arc::new(RecordingSink::new());
    let plan =
        Arc::new(FaultPlan::new(spec, seed)) as Arc<dyn parallel_bandwidth::sim::DeliveryHook>;
    let outcome = run_with_checkpointed_recovery_to(
        sink.clone(),
        &wl,
        &OfflineOptimal,
        params,
        seed.wrapping_mul(31).wrapping_add(7),
        Some(plan),
        &cfg,
        &ck,
    );
    let jsonl = sink.take().iter().map(|e| e.to_json()).collect();
    SoakRun { jsonl, outcome }
}

/// The soak invariants on a single run.
fn assert_soak_invariants(spec: &FaultSpec, seed: u64, run: &SoakRun) {
    let o = &run.outcome;
    let stats = o.recovery.fault_stats;
    let ctx = format!("spec {spec:?} seed {seed}");
    assert!(
        stats.conserved(),
        "{ctx}: ledger does not conserve: {stats:?}"
    );
    assert!(
        o.rollbacks <= 64,
        "{ctx}: rollback bound breached ({})",
        o.rollbacks
    );
    if o.gave_up {
        assert_eq!(o.rollbacks, 64, "{ctx}: gave up before the bound");
    }
    if o.recovery.delivered_all {
        // Duplicates that survive the zoo arrive too, so arrivals can
        // exceed the workload; they can never undershoot it.
        assert!(
            o.recovery.arrival_steps.len() as u64 >= soak_workload_flits(seed),
            "{ctx}: delivered_all but arrivals undershoot the workload"
        );
    }
    assert!(
        !run.jsonl.is_empty(),
        "{ctx}: traced run produced no events — the diff below would be vacuous"
    );
}

fn soak_workload_flits(seed: u64) -> u64 {
    workload::uniform_random(16, 3, seed ^ 0xC0FFEE).n_flits()
}

/// Walk the matrix: every (spec, seed) runs twice and the rendered traces
/// must match byte-for-byte, at the given pool width.
fn soak_matrix(seeds_per_spec: u64, width: usize) {
    at_width(width, || {
        for (i, spec) in spec_matrix().into_iter().enumerate() {
            for s in 0..seeds_per_spec {
                let seed = (i as u64) * 1000 + s * 17 + 3;
                let a = soak_once(spec, seed);
                assert_soak_invariants(&spec, seed, &a);
                let b = soak_once(spec, seed);
                assert_eq!(
                    a.jsonl, b.jsonl,
                    "spec {spec:?} seed {seed}: same-seed chaos traces differ"
                );
                assert_eq!(a.outcome.recovery.summary, b.outcome.recovery.summary);
                assert_eq!(
                    a.outcome.recovery.fault_stats,
                    b.outcome.recovery.fault_stats
                );
                assert_eq!(a.outcome.rollbacks, b.outcome.rollbacks);
            }
        }
    });
}

/// Always-on smoke tier: the scaled matrix at width 1.
#[test]
fn chaos_soak_smoke_width_1() {
    soak_matrix(soak_seeds(), 1);
}

/// Always-on smoke tier at a parallel pool width — and the width-1 matrix
/// must replay bit-identically here too (cross-width determinism).
#[test]
fn chaos_soak_smoke_width_8_matches_width_1() {
    let probe_spec = spec_matrix()[1];
    let narrow = at_width(1, || soak_once(probe_spec, 42));
    let wide = at_width(8, || soak_once(probe_spec, 42));
    assert_eq!(
        narrow.jsonl, wide.jsonl,
        "chaos trace differs between pool widths 1 and 8"
    );
    soak_matrix(soak_seeds().div_ceil(2), 8);
}

/// Heavy tier: the matrix widened 8×. Opt-in (`--ignored`); run by
/// `scripts/chaos_soak.sh` and the CI `chaos-soak` job.
#[test]
#[ignore = "heavy soak tier — run via scripts/chaos_soak.sh"]
fn chaos_soak_heavy() {
    soak_matrix(soak_seeds() * 8, 8);
}

// ---------------------------------------------------------------------------
// Sample-sort chaos tier (PR 8): the same soak discipline — full zoo,
// seeded, every run executed twice and trace-diffed — applied to a real
// algorithm whose recovery is taint-based (any ledger movement voids the
// superstep). Zoo rates are scaled to the algorithm's per-superstep
// message volume so the geometric replay converges inside the budget.
// ---------------------------------------------------------------------------

use parallel_bandwidth::algos::sample_sort::{
    keyset, run_with_checkpointed_recovery_opts, KeyDist, SampleSortConfig, Sampling,
    SortRecoveryOutcome,
};

/// The sample-sort zoo mixes: every fault class at once in three
/// intensities, plus a crash-dominated mix.
fn sort_spec_matrix() -> Vec<FaultSpec> {
    let full = |scale: f64| FaultSpec {
        drop_rate: 0.004 * scale,
        duplicate_rate: 0.003 * scale,
        delay_rate: 0.004 * scale,
        max_delay: 2,
        displace_rate: 0.003 * scale,
        max_displacement: 2,
        stall_rate: 0.01 * scale,
        crash_rate: 0.005 * scale,
        max_crash_len: 2,
    };
    vec![
        full(0.5),
        full(1.0),
        full(2.0),
        FaultSpec {
            crash_rate: 0.02,
            max_crash_len: 2,
            drop_rate: 0.004,
            ..FaultSpec::none()
        },
    ]
}

struct SortSoakRun {
    jsonl: Vec<String>,
    outcome: SortRecoveryOutcome,
}

/// One sample-sort chaos run: taint-based checkpointed recovery under
/// `spec`/`seed`, traced.
fn sort_soak_once(spec: FaultSpec, seed: u64) -> SortSoakRun {
    let p = 8;
    let per = 8;
    let params = MachineParams::from_gap(p, 4, 4);
    let inputs = keyset(KeyDist::ALL[(seed % 4) as usize], p * per, seed);
    let cfg = SampleSortConfig {
        ratio: 4,
        sampling: Sampling::Seeded,
        seed,
    };
    let ck = CheckpointConfig {
        interval: 1,
        charge_state_io: false,
        max_rollbacks: 200,
    };
    let sink = Arc::new(RecordingSink::new());
    let hook =
        Arc::new(FaultPlan::new(spec, seed)) as Arc<dyn parallel_bandwidth::sim::DeliveryHook>;
    let outcome = run_with_checkpointed_recovery_opts(
        params,
        &inputs,
        cfg,
        hook,
        &ck,
        false,
        Some(sink.clone()),
    );
    let jsonl = sink.take().iter().map(|e| e.to_json()).collect();
    SortSoakRun { jsonl, outcome }
}

/// The sample-sort soak invariants on a single run.
fn assert_sort_soak_invariants(spec: &FaultSpec, seed: u64, run: &SortSoakRun) {
    let o = &run.outcome;
    let ctx = format!("sort spec {spec:?} seed {seed}");
    assert!(
        o.fault_stats.conserved(),
        "{ctx}: ledger does not conserve: {:?}",
        o.fault_stats
    );
    assert!(o.rollbacks <= 200, "{ctx}: rollback bound breached");
    if o.gave_up {
        assert_eq!(o.rollbacks, 200, "{ctx}: gave up before the bound");
    } else {
        assert!(o.ok, "{ctx}: clean recovery but unsorted output");
    }
    assert!(
        !run.jsonl.is_empty(),
        "{ctx}: traced run produced no events — the diff below would be vacuous"
    );
}

/// Walk the sample-sort matrix: every (spec, seed) runs twice and the
/// rendered traces must match byte-for-byte, at the given pool width.
fn sort_soak_matrix(seeds_per_spec: u64, width: usize) {
    at_width(width, || {
        for (i, spec) in sort_spec_matrix().into_iter().enumerate() {
            for s in 0..seeds_per_spec {
                let seed = (i as u64) * 1000 + s * 17 + 3;
                let a = sort_soak_once(spec, seed);
                assert_sort_soak_invariants(&spec, seed, &a);
                let b = sort_soak_once(spec, seed);
                assert_eq!(
                    a.jsonl, b.jsonl,
                    "sort spec {spec:?} seed {seed}: same-seed chaos traces differ"
                );
                assert_eq!(a.outcome.summary, b.outcome.summary);
                assert_eq!(a.outcome.fault_stats, b.outcome.fault_stats);
                assert_eq!(a.outcome.rollbacks, b.outcome.rollbacks);
                assert_eq!(a.outcome.output, b.outcome.output);
            }
        }
    });
}

/// Always-on sample-sort smoke tier at width 1.
#[test]
fn sample_sort_chaos_smoke_width_1() {
    sort_soak_matrix(soak_seeds(), 1);
}

/// Always-on sample-sort smoke tier at a parallel pool width, plus the
/// width-1 ≡ width-8 trace cross-check.
#[test]
fn sample_sort_chaos_smoke_width_8_matches_width_1() {
    let probe_spec = sort_spec_matrix()[1];
    let narrow = at_width(1, || sort_soak_once(probe_spec, 42));
    let wide = at_width(8, || sort_soak_once(probe_spec, 42));
    assert_eq!(
        narrow.jsonl, wide.jsonl,
        "sample-sort chaos trace differs between pool widths 1 and 8"
    );
    sort_soak_matrix(soak_seeds().div_ceil(2), 8);
}

/// Heavy tier: the sample-sort matrix widened 8×. Opt-in (`--ignored`);
/// run by `scripts/chaos_soak.sh` and the CI `chaos-soak` job.
#[test]
#[ignore = "heavy soak tier — run via scripts/chaos_soak.sh"]
fn sample_sort_chaos_heavy() {
    sort_soak_matrix(soak_seeds() * 8, 8);
}
