//! Counterexample-to-test replay: every script `pbw-check` prints must
//! replay verbatim through `pbw_check::replay`, so a checker failure can
//! be committed as a regression test by pasting its coordinates here.
//!
//! The seeded coordinates below are real checker output, kept replaying
//! forever:
//!
//! * `program=ring p=3 supersteps=2 / clean` is the first counterexample
//!   the `--self-test` mode reports when the planted conservation bug is
//!   compiled in (`--features check-selftest`). On the healthy engine the
//!   same coordinates must replay clean — the planted ledger defect, and
//!   only it, separated the two.
//! * The faulted machine scripts exercise each fate the domain enumerates
//!   (drop, duplicate, delay, stall) through the canonical text format.
//! * The recovery script replays a drop pattern through the live
//!   ack/retransmit session and re-audits the termination contract.

use pbw_check::replay;
use pbw_check::FaultScript;

/// The `--self-test` provenance coordinates, on the healthy engine.
#[test]
fn self_test_counterexample_coordinates_replay_clean_without_the_planted_bug() {
    replay::machine("ring", 3, 2, "clean")
        .expect("the self-test counterexample is an artifact of the planted bug alone");
}

/// Faulted machine scripts in the canonical serialization replay through
/// the real engines and re-pass every leaf invariant.
#[test]
fn checker_scripts_replay_through_the_machine_explorer() {
    for (program, script) in [
        ("ring", "delay1@0/0.0 drop@0/1.0 dup@0/2.0 stall@1/p1"),
        ("fanout", "drop@0/0.0 delay1@0/0.1"),
        ("echo", "delay1@0/0.0 stall@1/p2"),
        ("crossfire", "dup@0/1.0 drop@0/2.0"),
    ] {
        // The canonical form round-trips: what the checker prints is what
        // this file commits, byte for byte.
        let parsed: FaultScript = script.parse().expect(script);
        assert_eq!(parsed.to_string(), script);
        replay::machine(program, 3, 3, script)
            .unwrap_or_else(|e| panic!("{program} / {script}: {e}"));
    }
}

/// A drop script replays through the live recovery session and re-passes
/// the termination audit, for both ack-charging modes.
#[test]
fn checker_scripts_replay_through_the_recovery_explorer() {
    let script = "drop@0/0.0 drop@0/1.0";
    for charge_acks in [true, false] {
        replay::recovery("ring", 3, charge_acks, script)
            .unwrap_or_else(|e| panic!("charge_acks={charge_acks}: {e}"));
        replay::recovery("hot", 3, charge_acks, script)
            .unwrap_or_else(|e| panic!("hot charge_acks={charge_acks}: {e}"));
    }
}

/// The replay harness rejects coordinates outside the catalog instead of
/// silently passing them.
#[test]
fn replay_rejects_unknown_coordinates_and_ill_typed_scripts() {
    assert!(replay::machine("no-such-program", 3, 2, "clean").is_err());
    assert!(replay::recovery("no-such-workload", 3, true, "clean").is_err());
    assert!(replay::machine("ring", 3, 2, "frob@0/0.0").is_err());
    // Recovery scripts are drop-only by construction; anything else is a
    // coordinate error, not a hidden pass.
    assert!(replay::recovery("ring", 3, true, "dup@0/0.0").is_err());
}
