//! Integration tests asserting the paper's *shape* claims end-to-end,
//! across crates, at small scale: who wins, by roughly what factor, and
//! where the crossovers fall.

use parallel_bandwidth::adversary::{
    AlgorithmB, AqtParams, BspGIntervalRouter, SingleTargetAdversary,
};
use parallel_bandwidth::algos::{broadcast, leader, one_to_all};
use parallel_bandwidth::models::{bounds, MachineParams, PenaltyFn};
use parallel_bandwidth::sched::schedulers::{EagerSend, Scheduler, UnbalancedSend};
use parallel_bandwidth::sched::{evaluate_schedule, workload};

/// Section 1: one-to-all personalized communication separates the model
/// families by exactly Θ(g).
#[test]
fn one_to_all_theta_g_separation() {
    for g in [4u64, 8, 16] {
        let mp = MachineParams::from_gap(512, g, g);
        let out = one_to_all::run(mp);
        assert!(out.ok);
        let sep = out.bsp.bsp_separation();
        assert!(
            sep > g as f64 * 0.5 && sep < g as f64 * 1.5,
            "g={g}: separation {sep}"
        );
    }
}

/// Theorem 6.2: Unbalanced-Send is within (1+ε) of optimal on every skew
/// regime while the oblivious baseline pays exponentially.
#[test]
fn unbalanced_send_beats_oblivious_by_orders_of_magnitude() {
    let mp = MachineParams::from_bandwidth(512, 128, 8);
    for wl in [
        workload::uniform_random(mp.p, 32, 1),
        workload::single_hot_sender(mp.p, 4096, 8, 2),
        workload::zipf_senders(mp.p, 512, 1.3, 3),
    ] {
        let us = evaluate_schedule(
            &UnbalancedSend::new(0.3).schedule(&wl, mp.m, 5),
            &wl,
            mp.m,
            PenaltyFn::Exponential,
        );
        let eager = evaluate_schedule(
            &EagerSend.schedule(&wl, mp.m, 0),
            &wl,
            mp.m,
            PenaltyFn::Exponential,
        );
        assert!(us.ratio_to_opt < 1.5, "ratio {}", us.ratio_to_opt);
        // With p/m = 4 the first eager steps carry ~4m: penalty e^3 each —
        // strictly worse than the scheduled run.
        assert!(
            eager.c_m > us.c_m,
            "eager {} vs scheduled {}",
            eager.c_m,
            us.c_m
        );
    }
}

/// Theorem 4.1: the measured tree broadcast respects the deterministic
/// lower bound, and non-receipt beats receive-only trees when L ≤ g.
#[test]
fn broadcast_bounds_hold() {
    let mp = MachineParams::from_gap(729, 27, 27);
    let tree = broadcast::bsp_g(mp);
    let tern = broadcast::ternary_nonreceipt(mp, true);
    assert!(tree.ok && tern.ok);
    let lower = bounds::broadcast_bsp_g_lower(mp.p, mp.g, mp.l);
    assert!(tree.time >= lower * 0.99);
    assert!(tern.time < tree.time);
}

/// Theorem 6.5: at the same aggregate bandwidth, β = 2/g traffic from one
/// source sinks the BSP(g) router and is absorbed by Algorithm B.
#[test]
fn dynamic_stability_crossover() {
    let (p, g, w) = (64usize, 8u64, 64u64);
    let m = p / g as usize;
    let beta = 2.0 / g as f64;
    let params = AqtParams {
        w,
        alpha: beta,
        beta,
    };
    let mut a1 = SingleTargetAdversary::new(p, params, 0);
    let tg = BspGIntervalRouter { p, g, l: 8, w }.run(&mut a1, 300);
    let mut a2 = SingleTargetAdversary::new(p, params, 0);
    let tm = AlgorithmB {
        p,
        m,
        w,
        eps: 0.3,
        seed: 3,
    }
    .run(&mut a2, 300);
    assert!(!tg.looks_stable(), "BSP(g) should sink at β = 2/g");
    assert!(tm.looks_stable(), "BSP(m) should absorb β = 2/g");
}

/// Section 5: the measured leader-recognition separation grows like p/m
/// and crushes the previous 2^Ω(√lg p) bound when m ≪ p.
#[test]
fn leader_separation_beats_previous_bound() {
    let mp = MachineParams::new_unchecked(4096, 64, 16, 4);
    let sep = leader::measured_separation(mp, 17);
    assert!(
        sep > bounds::previous_er_cr_separation(mp.p),
        "measured {sep} vs previous {}",
        bounds::previous_er_cr_separation(mp.p)
    );
}

/// Proposition 6.1 via the trace layer: audit the gvsm-routing workload's
/// schedule and check *which term binds* under each model family. A single
/// hot sender (h ≫ n/p, yet h < n/m) pins the local model to its g·h wire
/// term while the global model is bound by aggregate bandwidth n/m — the
/// breakdown exhibits the Θ(g·h / (n/m)) routing gap term-by-term.
#[test]
fn gvsm_routing_breakdown_shows_binding_terms() {
    use parallel_bandwidth::models::breakdown::Dominant;
    use parallel_bandwidth::sched::schedule::audit_schedule;

    // gvsm-routing geometry (quick variant): p = 256, g = 16 → m = 16.
    let mp = MachineParams::from_gap(256, 16, 8);
    // hot = 1024, cold = 64: imbalance h/(n/p) ≈ 15, but n/m ≈ 1084 > h,
    // so the self-scheduling BSP(m) is aggregate-bandwidth bound.
    let wl = workload::single_hot_sender(mp.p, 1024, 64, 3);
    let sched = UnbalancedSend::new(0.2).schedule(&wl, mp.m, 9);
    let audit = audit_schedule(&sched, &wl, mp, "gvsm-routing");
    let b = &audit.breakdown;

    // Local restriction: the hot sender's h = 1024 makes g·h the binding
    // term of BSP(g) — pure wire cost, no work or latency involvement.
    assert_eq!(audit.dominant_bsp_g, Dominant::Traffic);
    assert_eq!(b.local_traffic, (mp.g * 1024) as f64);

    // Global restriction (self-scheduling BSP(m)): n/m binds — it exceeds
    // the per-processor h, the work term and the latency.
    assert_eq!(b.ss_bandwidth, wl.n_flits() as f64 / mp.m as f64);
    assert!(
        b.ss_bandwidth > b.global_traffic,
        "need n/m > h for this regime"
    );
    assert_eq!(
        audit.breakdown.dominant_self_scheduling(),
        Dominant::Bandwidth
    );

    // The term-level routing gap is the paper's Θ(g) separation.
    let gap = b.local_traffic / b.ss_bandwidth;
    assert!(
        gap > mp.g as f64 / 2.0 && gap < mp.g as f64 * 2.0,
        "term gap {gap} should be Θ(g = {})",
        mp.g
    );
}

/// Section 4's naive emulation direction: a BSP(g) run never beats its
/// BSP(m) price at matched aggregate bandwidth (the m-model dominates).
#[test]
fn g_model_never_beats_m_model_on_same_run() {
    let mp = MachineParams::from_gap(256, 8, 8);
    for wl in [
        workload::permutation(mp.p, 1),
        workload::single_hot_sender(mp.p, 1000, 4, 2),
        workload::total_exchange(mp.p),
    ] {
        // Use the offline schedule so BSP(m) is not penalized.
        let sched = parallel_bandwidth::sched::schedulers::OfflineOptimal.schedule(&wl, mp.m, 0);
        let exec = parallel_bandwidth::sched::exec::run_schedule_on_bsp(&wl, &sched, mp);
        assert!(
            exec.summary.bsp_m_exp <= exec.summary.bsp_g + 1e-9,
            "BSP(m) {} > BSP(g) {}",
            exec.summary.bsp_m_exp,
            exec.summary.bsp_g
        );
    }
}

/// Large-p tier (PR 5; run explicitly — `scripts/ci.sh` invokes it with
/// `--ignored` in release mode): Theorem 4.1's broadcast bound must keep
/// holding at p = 2^18, where the tree's early rounds run through the
/// active-set engine path (a handful of senders on a quarter-million-
/// processor machine).
#[test]
#[ignore = "large-p smoke; scripts/ci.sh runs it in release"]
fn large_p_broadcast_smoke() {
    let mp = MachineParams::from_gap(1 << 18, 16, 8);
    let tree = broadcast::bsp_g(mp);
    assert!(tree.ok, "broadcast failed to reach every processor");
    let lower = bounds::broadcast_bsp_g_lower(mp.p, mp.g, mp.l);
    assert!(
        tree.time >= lower * 0.99,
        "measured {} undercuts the Theorem 4.1 lower bound {lower}",
        tree.time
    );
}

/// Large-p tier (PR 5): the Proposition 6.1 gvsm-routing term breakdown at
/// p = 2^18 — the single hot sender makes the workload ~0.0004% active, so
/// the whole audit-and-execute pipeline exercises the sparse engine path,
/// and the Θ(g) term-level routing gap must be unchanged by it.
#[test]
#[ignore = "large-p smoke; scripts/ci.sh runs it in release"]
fn large_p_gvsm_breakdown() {
    use parallel_bandwidth::models::breakdown::Dominant;
    use parallel_bandwidth::sched::schedule::audit_schedule;

    let mp = MachineParams::from_gap(1 << 18, 16, 8);
    // One hot sender, everyone else silent: the extreme unbalanced regime,
    // where the hot h = 4096 pins BSP(g) to its g·h wire term.
    let wl = workload::single_hot_sender(mp.p, 4096, 0, 3);
    let sched = UnbalancedSend::new(0.2).schedule(&wl, mp.m, 9);
    let audit = audit_schedule(&sched, &wl, mp, "gvsm-routing-large");
    let b = &audit.breakdown;
    assert_eq!(audit.dominant_bsp_g, Dominant::Traffic);
    assert_eq!(b.local_traffic, (mp.g * 4096) as f64);
    // And the engine agrees with the analytic audit on the sparse path.
    let exec = parallel_bandwidth::sched::exec::run_schedule_on_bsp(&wl, &sched, mp);
    assert_eq!(exec.profile.max_sent, 4096);
    assert_eq!(exec.profile.total_messages, wl.n_flits());
}
