//! Integration tests asserting the paper's *shape* claims end-to-end,
//! across crates, at small scale: who wins, by roughly what factor, and
//! where the crossovers fall.

use parallel_bandwidth::adversary::{
    AlgorithmB, AqtParams, BspGIntervalRouter, SingleTargetAdversary,
};
use parallel_bandwidth::algos::{broadcast, leader, one_to_all};
use parallel_bandwidth::models::{bounds, MachineParams, PenaltyFn};
use parallel_bandwidth::sched::schedulers::{EagerSend, Scheduler, UnbalancedSend};
use parallel_bandwidth::sched::{evaluate_schedule, workload};

/// Section 1: one-to-all personalized communication separates the model
/// families by exactly Θ(g).
#[test]
fn one_to_all_theta_g_separation() {
    for g in [4u64, 8, 16] {
        let mp = MachineParams::from_gap(512, g, g);
        let out = one_to_all::run(mp);
        assert!(out.ok);
        let sep = out.bsp.bsp_separation();
        assert!(
            sep > g as f64 * 0.5 && sep < g as f64 * 1.5,
            "g={g}: separation {sep}"
        );
    }
}

/// Theorem 6.2: Unbalanced-Send is within (1+ε) of optimal on every skew
/// regime while the oblivious baseline pays exponentially.
#[test]
fn unbalanced_send_beats_oblivious_by_orders_of_magnitude() {
    let mp = MachineParams::from_bandwidth(512, 128, 8);
    for wl in [
        workload::uniform_random(mp.p, 32, 1),
        workload::single_hot_sender(mp.p, 4096, 8, 2),
        workload::zipf_senders(mp.p, 512, 1.3, 3),
    ] {
        let us = evaluate_schedule(
            &UnbalancedSend::new(0.3).schedule(&wl, mp.m, 5),
            &wl,
            mp.m,
            PenaltyFn::Exponential,
        );
        let eager = evaluate_schedule(
            &EagerSend.schedule(&wl, mp.m, 0),
            &wl,
            mp.m,
            PenaltyFn::Exponential,
        );
        assert!(us.ratio_to_opt < 1.5, "ratio {}", us.ratio_to_opt);
        // With p/m = 4 the first eager steps carry ~4m: penalty e^3 each —
        // strictly worse than the scheduled run.
        assert!(
            eager.c_m > us.c_m,
            "eager {} vs scheduled {}",
            eager.c_m,
            us.c_m
        );
    }
}

/// Theorem 4.1: the measured tree broadcast respects the deterministic
/// lower bound, and non-receipt beats receive-only trees when L ≤ g.
#[test]
fn broadcast_bounds_hold() {
    let mp = MachineParams::from_gap(729, 27, 27);
    let tree = broadcast::bsp_g(mp);
    let tern = broadcast::ternary_nonreceipt(mp, true);
    assert!(tree.ok && tern.ok);
    let lower = bounds::broadcast_bsp_g_lower(mp.p, mp.g, mp.l);
    assert!(tree.time >= lower * 0.99);
    assert!(tern.time < tree.time);
}

/// Theorem 6.5: at the same aggregate bandwidth, β = 2/g traffic from one
/// source sinks the BSP(g) router and is absorbed by Algorithm B.
#[test]
fn dynamic_stability_crossover() {
    let (p, g, w) = (64usize, 8u64, 64u64);
    let m = p / g as usize;
    let beta = 2.0 / g as f64;
    let params = AqtParams {
        w,
        alpha: beta,
        beta,
    };
    let mut a1 = SingleTargetAdversary::new(p, params, 0);
    let tg = BspGIntervalRouter { p, g, l: 8, w }.run(&mut a1, 300);
    let mut a2 = SingleTargetAdversary::new(p, params, 0);
    let tm = AlgorithmB {
        p,
        m,
        w,
        eps: 0.3,
        seed: 3,
    }
    .run(&mut a2, 300);
    assert!(!tg.looks_stable(), "BSP(g) should sink at β = 2/g");
    assert!(tm.looks_stable(), "BSP(m) should absorb β = 2/g");
}

/// Section 5: the measured leader-recognition separation grows like p/m
/// and crushes the previous 2^Ω(√lg p) bound when m ≪ p.
#[test]
fn leader_separation_beats_previous_bound() {
    let mp = MachineParams::new_unchecked(4096, 64, 16, 4);
    let sep = leader::measured_separation(mp, 17);
    assert!(
        sep > bounds::previous_er_cr_separation(mp.p),
        "measured {sep} vs previous {}",
        bounds::previous_er_cr_separation(mp.p)
    );
}

/// Proposition 6.1 via the trace layer: audit the gvsm-routing workload's
/// schedule and check *which term binds* under each model family. A single
/// hot sender (h ≫ n/p, yet h < n/m) pins the local model to its g·h wire
/// term while the global model is bound by aggregate bandwidth n/m — the
/// breakdown exhibits the Θ(g·h / (n/m)) routing gap term-by-term.
#[test]
fn gvsm_routing_breakdown_shows_binding_terms() {
    use parallel_bandwidth::models::breakdown::Dominant;
    use parallel_bandwidth::sched::schedule::audit_schedule;

    // gvsm-routing geometry (quick variant): p = 256, g = 16 → m = 16.
    let mp = MachineParams::from_gap(256, 16, 8);
    // hot = 1024, cold = 64: imbalance h/(n/p) ≈ 15, but n/m ≈ 1084 > h,
    // so the self-scheduling BSP(m) is aggregate-bandwidth bound.
    let wl = workload::single_hot_sender(mp.p, 1024, 64, 3);
    let sched = UnbalancedSend::new(0.2).schedule(&wl, mp.m, 9);
    let audit = audit_schedule(&sched, &wl, mp, "gvsm-routing");
    let b = &audit.breakdown;

    // Local restriction: the hot sender's h = 1024 makes g·h the binding
    // term of BSP(g) — pure wire cost, no work or latency involvement.
    assert_eq!(audit.dominant_bsp_g, Dominant::Traffic);
    assert_eq!(b.local_traffic, (mp.g * 1024) as f64);

    // Global restriction (self-scheduling BSP(m)): n/m binds — it exceeds
    // the per-processor h, the work term and the latency.
    assert_eq!(b.ss_bandwidth, wl.n_flits() as f64 / mp.m as f64);
    assert!(
        b.ss_bandwidth > b.global_traffic,
        "need n/m > h for this regime"
    );
    assert_eq!(
        audit.breakdown.dominant_self_scheduling(),
        Dominant::Bandwidth
    );

    // The term-level routing gap is the paper's Θ(g) separation.
    let gap = b.local_traffic / b.ss_bandwidth;
    assert!(
        gap > mp.g as f64 / 2.0 && gap < mp.g as f64 * 2.0,
        "term gap {gap} should be Θ(g = {})",
        mp.g
    );
}

/// Section 4's naive emulation direction: a BSP(g) run never beats its
/// BSP(m) price at matched aggregate bandwidth (the m-model dominates).
#[test]
fn g_model_never_beats_m_model_on_same_run() {
    let mp = MachineParams::from_gap(256, 8, 8);
    for wl in [
        workload::permutation(mp.p, 1),
        workload::single_hot_sender(mp.p, 1000, 4, 2),
        workload::total_exchange(mp.p),
    ] {
        // Use the offline schedule so BSP(m) is not penalized.
        let sched = parallel_bandwidth::sched::schedulers::OfflineOptimal.schedule(&wl, mp.m, 0);
        let exec = parallel_bandwidth::sched::exec::run_schedule_on_bsp(&wl, &sched, mp);
        assert!(
            exec.summary.bsp_m_exp <= exec.summary.bsp_g + 1e-9,
            "BSP(m) {} > BSP(g) {}",
            exec.summary.bsp_m_exp,
            exec.summary.bsp_g
        );
    }
}

/// Large-p tier (PR 5; run explicitly — `scripts/ci.sh` invokes it with
/// `--ignored` in release mode): Theorem 4.1's broadcast bound must keep
/// holding at p = 2^18, where the tree's early rounds run through the
/// active-set engine path (a handful of senders on a quarter-million-
/// processor machine).
#[test]
#[ignore = "large-p smoke; scripts/ci.sh runs it in release"]
fn large_p_broadcast_smoke() {
    let mp = MachineParams::from_gap(1 << 18, 16, 8);
    let tree = broadcast::bsp_g(mp);
    assert!(tree.ok, "broadcast failed to reach every processor");
    let lower = bounds::broadcast_bsp_g_lower(mp.p, mp.g, mp.l);
    assert!(
        tree.time >= lower * 0.99,
        "measured {} undercuts the Theorem 4.1 lower bound {lower}",
        tree.time
    );
}

/// Large-p tier (PR 5): the Proposition 6.1 gvsm-routing term breakdown at
/// p = 2^18 — the single hot sender makes the workload ~0.0004% active, so
/// the whole audit-and-execute pipeline exercises the sparse engine path,
/// and the Θ(g) term-level routing gap must be unchanged by it.
#[test]
#[ignore = "large-p smoke; scripts/ci.sh runs it in release"]
fn large_p_gvsm_breakdown() {
    use parallel_bandwidth::models::breakdown::Dominant;
    use parallel_bandwidth::sched::schedule::audit_schedule;

    let mp = MachineParams::from_gap(1 << 18, 16, 8);
    // One hot sender, everyone else silent: the extreme unbalanced regime,
    // where the hot h = 4096 pins BSP(g) to its g·h wire term.
    let wl = workload::single_hot_sender(mp.p, 4096, 0, 3);
    let sched = UnbalancedSend::new(0.2).schedule(&wl, mp.m, 9);
    let audit = audit_schedule(&sched, &wl, mp, "gvsm-routing-large");
    let b = &audit.breakdown;
    assert_eq!(audit.dominant_bsp_g, Dominant::Traffic);
    assert_eq!(b.local_traffic, (mp.g * 4096) as f64);
    // And the engine agrees with the analytic audit on the sparse path.
    let exec = parallel_bandwidth::sched::exec::run_schedule_on_bsp(&wl, &sched, mp);
    assert_eq!(exec.profile.max_sent, 4096);
    assert_eq!(exec.profile.total_messages, wl.n_flits());
}

// ---------------------------------------------------------------------------
// BSP sample sort (PR 8): the local/global split driven by data. On the
// staggered all-to-all bucket exchange, BSP(m) charges the aggregate n/m
// while BSP(g) charges g·max_bucket, so their ratio is the bucket
// imbalance λ = max_bucket/(n/p) — capped at g once λ ≥ g (BSP(m) switches
// to charging h). The crossover table below is pinned for two fixed seeds.
// ---------------------------------------------------------------------------

mod sample_sort_claims {
    use parallel_bandwidth::algos::sample_sort::{
        keyset, run, run_opts, KeyDist, SampleSortConfig, SampleSortRun, Sampling,
    };
    use parallel_bandwidth::models::{bounds, BspG, BspM, CostModel, MachineParams, PenaltyFn};

    const P: usize = 32;
    const PER: usize = 64;
    const SEEDS: [u64; 2] = [7, 11];

    fn params() -> MachineParams {
        MachineParams::from_gap(P, 4, 8)
    }

    fn sort_run(dist: KeyDist, ratio: usize, seed: u64) -> SampleSortRun {
        let cfg = SampleSortConfig {
            ratio,
            sampling: Sampling::Regular,
            seed,
        };
        let out = run(params(), &keyset(dist, P * PER, seed), cfg);
        assert!(
            out.ok,
            "{} ratio {ratio} seed {seed}: not sorted",
            dist.name()
        );
        out
    }

    /// Exchange-superstep BSP(g)/BSP(m) price ratio.
    fn exch_gm(run: &SampleSortRun) -> f64 {
        let mp = params();
        let ex = &run.reports[run.exchange_step].profile;
        let g = BspG { g: mp.g, l: mp.l };
        let m = BspM {
            m: mp.m,
            l: mp.l,
            penalty: PenaltyFn::Exponential,
        };
        g.superstep_cost(ex) / m.superstep_cost(ex)
    }

    /// The pinned crossover table: at which oversampling ratio the two
    /// models' exchange predictions come within 5% — and for which skews
    /// they never do.
    #[test]
    fn crossover_ratios_are_pinned_for_two_seeds() {
        for seed in SEEDS {
            // Uniform keys cross over exactly at the exact-quantile rung.
            assert!(
                exch_gm(&sort_run(KeyDist::Uniform, 64, seed)) <= 1.05,
                "seed {seed}"
            );
            assert!(
                exch_gm(&sort_run(KeyDist::Uniform, 32, seed)) > 1.05,
                "seed {seed}"
            );
            // Pre-sorted blocks cross earlier: regular sampling recovers
            // the block boundaries.
            assert!(
                exch_gm(&sort_run(KeyDist::PreSorted, 32, seed)) <= 1.05,
                "seed {seed}"
            );
            assert!(
                exch_gm(&sort_run(KeyDist::PreSorted, 16, seed)) > 1.05,
                "seed {seed}"
            );
            // Zipf never crosses: its hot tie values each hold a block's
            // worth of unsplittable copies, flooring λ ≈ 2 under exact
            // splitters.
            assert!(
                exch_gm(&sort_run(KeyDist::Zipf, 64, seed)) >= 1.5,
                "seed {seed}"
            );
            // Duplicate-heavy never even leaves saturation: 8 distinct
            // values pin λ ≥ g at every ratio, so the divergence sits at
            // its cap g = 4 across the whole ladder.
            for ratio in [1usize, 4, 16, 64] {
                let gm = exch_gm(&sort_run(KeyDist::DupHeavy, ratio, seed));
                assert!(gm >= 3.99, "seed {seed} ratio {ratio}: {gm}");
            }
        }
    }

    /// Low oversampling ratios diverge hard: λ at ratio 1 is an order of
    /// magnitude over the crossover, and shrinking the ratio 4× at the low
    /// end more than doubles λ — the models' disagreement grows much
    /// faster than the sampling budget shrinks.
    #[test]
    fn low_ratio_divergence_is_pinned_for_two_seeds() {
        for seed in SEEDS {
            for dist in [KeyDist::Uniform, KeyDist::Zipf] {
                let l1 = sort_run(dist, 1, seed).imbalance(PER);
                let l4 = sort_run(dist, 4, seed).imbalance(PER);
                let l16 = sort_run(dist, 16, seed).imbalance(PER);
                assert!(l1 > 10.0, "{} seed {seed}: λ(1) = {l1}", dist.name());
                assert!(l1 > 2.0 * l4, "{} seed {seed}: {l1} vs {l4}", dist.name());
                assert!(l4 > 1.9 * l16, "{} seed {seed}: {l4} vs {l16}", dist.name());
            }
        }
    }

    /// Under BSP(g) the dominant superstep flips across the sweep: at
    /// ratio 1 the skewed bucket merge binds, past the crossover the
    /// sample gather into pid 0 does — oversampling is free globally but
    /// becomes the local bottleneck.
    #[test]
    fn bsp_g_dominant_superstep_flips_across_the_sweep() {
        let mp = params();
        let g = BspG { g: mp.g, l: mp.l };
        for seed in SEEDS {
            let dominant = |ratio: usize| {
                let run = sort_run(KeyDist::Uniform, ratio, seed);
                run.reports
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        g.superstep_cost(&a.profile)
                            .total_cmp(&g.superstep_cost(&b.profile))
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty run")
            };
            let run = sort_run(KeyDist::Uniform, 1, seed);
            assert_eq!(
                dominant(1),
                run.exchange_step + 1,
                "seed {seed}: merge binds at ratio 1"
            );
            assert_eq!(
                dominant(64),
                1,
                "seed {seed}: splitter selection binds at ratio 64"
            );
        }
    }

    /// Message conservation on the exchange superstep: Σ m_t over the
    /// injection histogram == delivered == n, every key exactly once, and
    /// the stagger keeps every slot at or below m.
    #[test]
    fn exchange_conserves_sum_mt_equals_delivered() {
        let n = (P * PER) as u64;
        for seed in SEEDS {
            for dist in KeyDist::ALL {
                let run = sort_run(dist, 8, seed);
                let ex = &run.reports[run.exchange_step];
                let sum_mt: u64 = ex.profile.injections.iter().sum();
                assert_eq!(sum_mt, n, "{} seed {seed}", dist.name());
                assert_eq!(ex.delivered, n, "{} seed {seed}", dist.name());
                let m = params().m as u64;
                for (slot, &count) in ex.profile.injections.iter().enumerate() {
                    assert!(
                        count <= m,
                        "{} seed {seed}: slot {slot} = {count} > m",
                        dist.name()
                    );
                }
            }
        }
    }

    /// Theorem 6.2 envelope on the exchange superstep: with no slot above
    /// m, the BSP(m) price stays within the self-scheduling target
    /// `max((1+ε)n/m, x̄, ȳ, L) + τ` — even under the worst skew, because
    /// x̄ = n/p bounds the work and ȳ = max_bucket bounds h.
    #[test]
    fn exchange_meets_thm_6_2_envelope() {
        let mp = params();
        let n = (P * PER) as u64;
        let model = BspM {
            m: mp.m,
            l: mp.l,
            penalty: PenaltyFn::Exponential,
        };
        for seed in SEEDS {
            for dist in KeyDist::ALL {
                for ratio in [1usize, 8, 64] {
                    let run = sort_run(dist, ratio, seed);
                    let ex = &run.reports[run.exchange_step].profile;
                    let target = bounds::unbalanced_send_target(
                        n,
                        mp.m,
                        ex.max_sent,
                        ex.max_received,
                        0.1,
                        mp.p,
                        mp.l,
                    );
                    let cost = model.superstep_cost(ex);
                    assert!(
                        cost <= target,
                        "{} ratio {ratio} seed {seed}: BSP(m) {cost} over envelope {target}",
                        dist.name()
                    );
                }
            }
        }
    }

    /// The differential oracle holds on the engine's sparse path too (the
    /// full dense/sparse × width matrix lives in tests/properties.rs).
    #[test]
    fn sparse_path_produces_the_same_priced_run() {
        for seed in SEEDS {
            let inputs = keyset(KeyDist::Zipf, P * PER, seed);
            let cfg = SampleSortConfig {
                ratio: 8,
                sampling: Sampling::Seeded,
                seed,
            };
            let dense = run_opts(params(), &inputs, cfg, false, None, None);
            let sparse = run_opts(params(), &inputs, cfg, true, None, None);
            assert!(dense.ok && sparse.ok);
            assert_eq!(dense.output, sparse.output);
            assert_eq!(dense.summary, sparse.summary);
        }
    }
}
