//! Trace-layer conformance: every event a [`RecordingSink`] captures from a
//! real engine run must be a *faithful* account of that run.
//!
//! Three invariants, checked at quickstart scale:
//!
//! 1. **Message conservation** — the injection histogram sums to exactly the
//!    messages the engine reports delivered (`Σ_t m_t == delivered`).
//! 2. **Injection rule** — no processor ever injects more than one message
//!    in one machine step (`max_proc_slot_injections ≤ 1` for rule-abiding
//!    programs).
//! 3. **Cost reproducibility** — re-pricing the *recorded* profiles under
//!    each cost model reproduces the engine's own run totals bit-for-bit:
//!    the trace is sufficient to audit the run, no engine internals needed.

mod common;

use std::sync::Arc;

use common::{assert_conserves_messages, quickstart_params, run_bsp_hot_sender};
use parallel_bandwidth::models::{
    BspG, BspM, CostModel, PenaltyFn, QsmG, QsmM, SelfSchedulingBspM,
};
use parallel_bandwidth::sim::{CostSummary, QsmMachine};
use parallel_bandwidth::trace::{RecordingSink, TraceSource};

#[test]
fn bsp_trace_conserves_messages_and_respects_injection_rule() {
    let params = quickstart_params();
    let sink = Arc::new(RecordingSink::new());
    let machine = run_bsp_hot_sender(params, 4096, 8, 3, sink.clone());
    let events = sink.take();
    assert_eq!(events.len(), 3, "one event per superstep");
    for (i, ev) in events.iter().enumerate() {
        assert_eq!(ev.source, TraceSource::Bsp);
        assert_eq!(ev.label, "conformance-bsp");
        assert_eq!(ev.superstep, i as u64);
        assert_eq!(ev.params, params);
        assert_conserves_messages(ev);
        // Auto-slot assignment pipelines sends: the engine must never let a
        // processor inject twice in one step, and the trace must prove it.
        assert_eq!(
            ev.max_proc_slot_injections, 1,
            "superstep {i} violates one-injection-per-processor-per-step"
        );
        // The recorded event mirrors the profile the engine kept.
        assert_eq!(ev.profile, machine.profiles()[i]);
    }
}

#[test]
fn bsp_costs_recomputed_from_trace_match_engine_totals() {
    let params = quickstart_params();
    let sink = Arc::new(RecordingSink::new());
    let machine = run_bsp_hot_sender(params, 4096, 8, 3, sink.clone());
    let events = sink.take();
    let profiles: Vec<_> = events.iter().map(|ev| ev.profile.clone()).collect();

    // Re-price the run under every model from the *trace*, then ask the
    // engine for its own totals — they must agree exactly (same floats, same
    // summation order).
    let models: Vec<Box<dyn CostModel>> = vec![
        Box::new(BspG {
            g: params.g,
            l: params.l,
        }),
        Box::new(BspM {
            m: params.m,
            l: params.l,
            penalty: PenaltyFn::Linear,
        }),
        Box::new(BspM {
            m: params.m,
            l: params.l,
            penalty: PenaltyFn::Exponential,
        }),
        Box::new(SelfSchedulingBspM {
            m: params.m,
            l: params.l,
        }),
    ];
    for model in &models {
        let from_trace = model.run_cost(&profiles);
        let from_engine = machine.cost(model.as_ref());
        assert_eq!(
            from_trace.to_bits(),
            from_engine.to_bits(),
            "trace-recomputed cost {from_trace} != engine cost {from_engine}"
        );
    }

    // Each event's embedded CostSummary is exactly the summary of its own
    // superstep.
    for ev in &events {
        let expect = CostSummary::price(params, std::slice::from_ref(&ev.profile));
        assert_eq!(ev.costs, expect);
    }
}

#[test]
fn qsm_trace_conserves_requests_and_reprices_exactly() {
    // Quickstart-scale shared-memory run: a write phase, a concurrent-read
    // phase (contention p/8), and a scatter-read phase.
    let params = quickstart_params();
    let p = params.p;
    let sink = Arc::new(RecordingSink::new());
    let mut qsm: QsmMachine<i64> = QsmMachine::new(params, 2 * p, |_| 0);
    qsm.set_sink(sink.clone())
        .set_trace_label("conformance-qsm");
    qsm.phase(|pid, _s, _res, ctx| ctx.write(pid, pid as i64));
    qsm.phase(|pid, _s, _res, ctx| ctx.read(pid / 8));
    qsm.phase(|pid, _s, _res, ctx| {
        for k in 0..4u64 {
            ctx.read((pid + k as usize * 7) % p);
        }
    });
    let events = sink.take();
    assert_eq!(events.len(), 3);
    for (i, ev) in events.iter().enumerate() {
        assert_eq!(ev.source, TraceSource::Qsm);
        assert_eq!(ev.superstep, i as u64);
        // Conservation for QSM: the histogram covers every request served.
        let injected: u64 = ev.profile.injections.iter().sum();
        assert_eq!(injected, ev.delivered);
        let issued: u64 = ev.per_proc_sent.iter().sum();
        assert_eq!(issued, ev.delivered);
        assert_eq!(ev.max_proc_slot_injections, 1);
        assert_eq!(ev.profile, qsm.profiles()[i]);
    }
    // Phase 2: all p processors hit p/8 cells, 8 readers per cell.
    assert_eq!(events[1].profile.max_contention, 8);

    // Bit-exact re-pricing from the recorded profiles.
    let profiles: Vec<_> = events.iter().map(|ev| ev.profile.clone()).collect();
    let models: Vec<Box<dyn CostModel>> = vec![
        Box::new(QsmG { g: params.g }),
        Box::new(QsmM {
            m: params.m,
            penalty: PenaltyFn::Linear,
        }),
        Box::new(QsmM {
            m: params.m,
            penalty: PenaltyFn::Exponential,
        }),
    ];
    for model in &models {
        assert_eq!(
            model.run_cost(&profiles).to_bits(),
            qsm.cost(model.as_ref()).to_bits()
        );
    }
}

#[test]
fn trace_breakdown_slot_penalties_sum_to_bandwidth_term() {
    // The per-slot penalty vector in an event is the exact decomposition of
    // its exponential bandwidth term: Σ_t f_m(m_t) == breakdown.bandwidth.
    let params = quickstart_params();
    let sink = Arc::new(RecordingSink::new());
    let _machine = run_bsp_hot_sender(params, 2048, 4, 2, sink.clone());
    for ev in sink.take() {
        assert_eq!(ev.slot_penalties.len(), ev.profile.injections.len());
        let total: f64 = ev.slot_penalties.iter().sum();
        let expect = PenaltyFn::Exponential.total_charge(&ev.profile.injections, params.m);
        assert!(
            (total - expect).abs() <= 1e-9 * expect.max(1.0),
            "slot penalties sum {total} != c_m {expect}"
        );
    }
}
