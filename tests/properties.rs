//! Cross-crate property-based tests (proptest): invariants that must hold
//! for *arbitrary* workloads and parameters, not just the curated suites.

use parallel_bandwidth::models::{div_ceil, MachineParams, PenaltyFn};
use parallel_bandwidth::sched::exec::run_schedule_on_bsp;
use parallel_bandwidth::sched::flits::UnbalancedFlitSend;
use parallel_bandwidth::sched::schedulers::{
    EagerSend, OfflineOptimal, Scheduler, UnbalancedConsecutiveSend, UnbalancedGranularSend,
    UnbalancedSend,
};
use parallel_bandwidth::sched::workload::Msg;
use parallel_bandwidth::sched::{evaluate_schedule, validate_schedule, Workload};
use proptest::prelude::*;

/// An arbitrary unit-message workload over `p` processors.
fn unit_workload(p: usize, max_msgs: usize) -> impl Strategy<Value = Workload> {
    proptest::collection::vec(proptest::collection::vec(0..p, 0..max_msgs), p..=p)
        .prop_map(Workload::from_dests)
}

/// An arbitrary variable-length workload.
fn flit_workload(p: usize, max_msgs: usize, max_len: u64) -> impl Strategy<Value = Workload> {
    proptest::collection::vec(
        proptest::collection::vec((0..p, 1..=max_len), 0..max_msgs),
        p..=p,
    )
    .prop_map(|sends| {
        Workload::new(
            sends
                .into_iter()
                .map(|l| l.into_iter().map(|(dest, len)| Msg { dest, len }).collect())
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every scheduler produces a valid schedule (shape + one flit per
    /// processor per step) on arbitrary unit workloads.
    #[test]
    fn all_schedulers_produce_valid_schedules(
        wl in unit_workload(16, 20),
        m in 1usize..16,
        seed in 0u64..1000,
    ) {
        for sched in [
            UnbalancedSend::new(0.2).schedule(&wl, m, seed),
            UnbalancedConsecutiveSend::new(0.2).schedule(&wl, m, seed),
            UnbalancedGranularSend::default().schedule(&wl, m, seed),
            OfflineOptimal.schedule(&wl, m, seed),
            EagerSend.schedule(&wl, m, seed),
        ] {
            prop_assert!(validate_schedule(&sched, &wl).is_ok());
        }
    }

    /// The offline schedule achieves the global lower bound exactly and
    /// never overloads a step.
    #[test]
    fn offline_is_optimal_and_feasible(
        wl in unit_workload(16, 20),
        m in 1usize..16,
    ) {
        let sched = OfflineOptimal.schedule(&wl, m, 0);
        let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        prop_assert!(cost.no_slot_exceeds_m);
        let n = wl.n_flits();
        if n > 0 {
            let t = div_ceil(n, m as u64).max(wl.xbar());
            prop_assert_eq!(cost.makespan, t);
        }
    }

    /// No schedule can beat the offline optimum in *model time*: a schedule
    /// may compress its makespan by overloading steps, but the penalty
    /// charge `c_m ≥ n/m` and `h ≥ x̄` make `max(h, c_m)` a true lower
    /// bound matched by the offline schedule.
    #[test]
    fn no_scheduler_beats_offline(
        wl in unit_workload(12, 16),
        m in 1usize..12,
        seed in 0u64..100,
    ) {
        let opt = evaluate_schedule(&OfflineOptimal.schedule(&wl, m, 0), &wl, m, PenaltyFn::Exponential);
        for sched in [
            UnbalancedSend::new(0.2).schedule(&wl, m, seed),
            EagerSend.schedule(&wl, m, seed),
        ] {
            let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
            prop_assert!(cost.model_time + 1.0 >= opt.makespan as f64);
        }
    }

    /// The exponential charge never undercuts the linear one, on any
    /// schedule of any workload (the §2 relation f_m^u ≥ f_m^ℓ lifted to
    /// whole runs).
    #[test]
    fn exponential_dominates_linear_on_runs(
        wl in unit_workload(12, 16),
        m in 1usize..12,
        seed in 0u64..100,
    ) {
        let sched = EagerSend.schedule(&wl, m, seed);
        let exp = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
        let lin = evaluate_schedule(&sched, &wl, m, PenaltyFn::Linear);
        prop_assert!(exp.c_m >= lin.c_m - 1e-9);
        // And linear c_m ≥ n/m always (it is exactly the work of moving n
        // messages at m per step, plus idle-slot rounding).
        prop_assert!(lin.c_m + 1e-9 >= wl.n_flits() as f64 / m as f64);
    }

    /// Flit schedules are valid and deliver everything when executed on
    /// the real engine.
    #[test]
    fn flit_schedules_execute_end_to_end(
        wl in flit_workload(8, 6, 5),
        seed in 0u64..100,
    ) {
        let m = 4;
        let sched = UnbalancedFlitSend::new(0.3).schedule(&wl, m, seed);
        prop_assert!(validate_schedule(&sched, &wl).is_ok());
        let params = MachineParams::from_bandwidth(8, m, 2);
        let exec = run_schedule_on_bsp(&wl, &sched, params);
        let total: usize = exec.delivered.iter().map(Vec::len).sum();
        prop_assert_eq!(total as u64, wl.n_flits());
    }

    /// Analytic schedule pricing agrees with the engine's metering.
    #[test]
    fn analytic_and_engine_profiles_agree(
        wl in unit_workload(8, 10),
        seed in 0u64..100,
    ) {
        let m = 4;
        let sched = UnbalancedSend::new(0.2).schedule(&wl, m, seed);
        let params = MachineParams::from_bandwidth(8, m, 2);
        let exec = run_schedule_on_bsp(&wl, &sched, params);
        let analytic = parallel_bandwidth::sched::schedule::to_profile(&sched, &wl);
        prop_assert_eq!(&exec.profile.injections, &analytic.injections);
        prop_assert_eq!(exec.profile.total_messages, analytic.total_messages);
    }

    /// On any recorded trace event, the exponential BSP(m) penalty never
    /// undercuts the linear one: the event's `breakdown.bandwidth` (the exp
    /// term) dominates the linear `c_m` recomputed from the same recorded
    /// injection histogram.
    #[test]
    fn traced_exponential_penalty_dominates_linear(
        wl in unit_workload(8, 10),
        seed in 0u64..100,
    ) {
        use std::sync::Arc;
        use parallel_bandwidth::trace::{RecordingSink, TraceSink};
        let m = 4;
        let params = MachineParams::from_bandwidth(8, m, 2);
        let sched = UnbalancedSend::new(0.2).schedule(&wl, m, seed);
        let sink = Arc::new(RecordingSink::new());
        let audit = parallel_bandwidth::sched::schedule::audit_schedule(
            &sched, &wl, params, "prop",
        );
        sink.record(audit);
        for ev in sink.take() {
            let lin = PenaltyFn::Linear.total_charge(&ev.profile.injections, m);
            let exp = PenaltyFn::Exponential.total_charge(&ev.profile.injections, m);
            prop_assert!(ev.breakdown.bandwidth >= lin - 1e-9);
            prop_assert!((ev.breakdown.bandwidth - exp).abs() < 1e-9);
            // And the per-slot decomposition is consistent with the total.
            let slot_sum: f64 = ev.slot_penalties.iter().sum();
            prop_assert!((slot_sum - exp).abs() < 1e-9 * exp.max(1.0));
        }
    }

    /// Tracing is observation, not intervention: running the same program
    /// on a machine with a `NullSink` and one with a `RecordingSink` yields
    /// bit-identical profiles and costs.
    #[test]
    fn null_and_recording_sinks_observe_identical_runs(
        wl in unit_workload(8, 10),
        seed in 0u64..100,
    ) {
        use std::sync::Arc;
        use parallel_bandwidth::trace::{NullSink, RecordingSink, TraceSink};
        let m = 4;
        let params = MachineParams::from_bandwidth(8, m, 2);
        let sched = UnbalancedSend::new(0.2).schedule(&wl, m, seed);
        let sinks: [Arc<dyn TraceSink>; 2] =
            [Arc::new(NullSink), Arc::new(RecordingSink::new())];
        let mut outcomes = Vec::new();
        for sink in sinks {
            let mut machine: parallel_bandwidth::sim::BspMachine<(), (u32, u32, u32)> =
                parallel_bandwidth::sim::BspMachine::new(params, |_| ());
            machine.set_sink(sink);
            machine.superstep(|pid, _s, _in, out| {
                for (k, (msg, &start)) in
                    wl.msgs(pid).iter().zip(&sched.starts[pid]).enumerate()
                {
                    for f in 0..msg.len {
                        out.send_at(msg.dest, (pid as u32, k as u32, f as u32), start + f);
                    }
                }
            });
            let summary = parallel_bandwidth::sim::CostSummary::price(
                params, machine.profiles(),
            );
            outcomes.push((machine.profiles().to_vec(), summary));
        }
        prop_assert_eq!(&outcomes[0].0, &outcomes[1].0);
        prop_assert_eq!(outcomes[0].1.bsp_m_exp.to_bits(), outcomes[1].1.bsp_m_exp.to_bits());
        prop_assert_eq!(outcomes[0].1.bsp_g.to_bits(), outcomes[1].1.bsp_g.to_bits());
        prop_assert_eq!(outcomes[0].1.qsm_m_exp.to_bits(), outcomes[1].1.qsm_m_exp.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The machine sorts agree with the std sort on arbitrary inputs.
    #[test]
    fn machine_sorts_agree_with_std(
        keys in proptest::collection::vec(-1000i64..1000, 64..=64),
    ) {
        let mp = MachineParams::from_gap(16, 4, 2);
        let q = parallel_bandwidth::algos::sort::qsm_m(mp, &keys);
        prop_assert!(q.ok);
        let b = parallel_bandwidth::algos::sort::bsp_m(mp, &keys);
        prop_assert!(b.ok);
    }

    /// Columnsort equals std sort on arbitrary inputs.
    #[test]
    fn columnsort_agrees_with_std(
        keys in proptest::collection::vec(any::<i32>(), 0..200),
    ) {
        let keys: Vec<i64> = keys.into_iter().map(i64::from).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(parallel_bandwidth::algos::columnsort::columnsort(&keys), expect);
    }

    /// The CRCW h-relation realizations deliver exactly the sent multiset.
    #[test]
    fn hrelation_realizations_deliver(
        sends in proptest::collection::vec(
            proptest::collection::vec((0usize..6, -50i64..50), 0..5),
            6..=6,
        ),
    ) {
        use parallel_bandwidth::pram::hrelation;
        let teams = hrelation::realize_teams(&sends);
        prop_assert!(hrelation::check_delivery(&sends, &teams));
        let chain = hrelation::realize_chainsort(&sends);
        prop_assert!(hrelation::check_delivery(&sends, &chain));
        let dense = hrelation::realize_dense(&sends, parallel_bandwidth::pram::primitives::Fidelity::Charged);
        prop_assert!(hrelation::check_delivery(&sends, &dense));
    }

    /// PRAM list ranking matches the sequential reference on random lists.
    #[test]
    fn list_ranking_matches_sequential(n in 1usize..80, seed in 0u64..50) {
        let list = parallel_bandwidth::algos::list_ranking::random_list(n, seed);
        let run = parallel_bandwidth::algos::list_ranking::pram_list_ranking(&list, seed ^ 7);
        prop_assert!(run.ok);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The §4 emulation: re-laying-out any profile's injections to ≤ m per
    /// step never increases the BSP(m) price beyond the BSP(g) price of
    /// the original, at matched aggregate bandwidth — for *full-rate*
    /// profiles (every processor sends in every occupied step), which is
    /// the shape g-model programs produce.
    #[test]
    fn emulation_never_costs_more_than_g(
        h in 1u64..12,
        m_exp in 1u32..5,
    ) {
        use parallel_bandwidth::models::emulation;
        use parallel_bandwidth::models::ProfileBuilder;
        let m = 1usize << m_exp; // 2..16
        let p = (m as u64) * 8; // g = 8
        let g = 8u64;
        let mut b = ProfileBuilder::new();
        b.record_traffic(h, h);
        for t in 0..h {
            b.record_injections(t, p);
        }
        let prof = b.build();
        prop_assert!(emulation::emulation_preserves_cost(&prof, g, m, 4));
    }

    /// Emulated profiles conserve messages and never exceed m per step.
    #[test]
    fn emulation_conserves_messages(
        loads in proptest::collection::vec(0u64..100, 1..30),
        m in 1usize..16,
    ) {
        use parallel_bandwidth::models::emulation::emulate_on_m;
        use parallel_bandwidth::models::ProfileBuilder;
        let mut b = ProfileBuilder::new();
        for (t, &l) in loads.iter().enumerate() {
            b.record_injections(t as u64, l);
        }
        let prof = b.build();
        let em = emulate_on_m(&prof, m);
        prop_assert_eq!(em.injections.iter().sum::<u64>(), loads.iter().sum::<u64>());
        prop_assert!(em.injections.iter().all(|&x| x <= m as u64));
    }

    /// QSM request schedules are valid and the engine read values check
    /// out, for arbitrary request batches.
    #[test]
    fn qsm_request_batches_execute(
        reqs in proptest::collection::vec(
            proptest::collection::vec(0usize..16, 0..10),
            8..=8,
        ),
    ) {
        use parallel_bandwidth::sched::qsm_sched::{run_unbalanced_reads, RequestBatch};
        let params = MachineParams::from_bandwidth(8, 4, 2);
        let mem: Vec<i64> = (0..16).map(|i| 100 + i).collect();
        let batch = RequestBatch::new(reqs, 16);
        let out = run_unbalanced_reads(params, &mem, &batch, 0.3, 3);
        prop_assert!(out.ok);
    }

    /// The breakdown's dominant term really is the max: re-deriving the
    /// BSP(m) cost from the breakdown terms matches the cost model.
    #[test]
    fn breakdown_consistent_with_cost_model(
        work in 0u64..1000,
        sent in 0u64..50,
        load in 0u64..200,
    ) {
        use parallel_bandwidth::models::breakdown::Breakdown;
        use parallel_bandwidth::models::{BspM, CostModel, PenaltyFn, ProfileBuilder};
        let mp = MachineParams::from_gap(64, 8, 16);
        let mut b = ProfileBuilder::new();
        b.record_work(work).record_traffic(sent, sent);
        if load > 0 {
            b.record_injections(0, load);
        }
        let prof = b.build();
        let bd = Breakdown::of(mp, &prof);
        let model = BspM { m: mp.m, l: mp.l, penalty: PenaltyFn::Exponential };
        let expect = bd.work.max(bd.global_traffic).max(bd.bandwidth).max(bd.latency);
        prop_assert!((model.superstep_cost(&prof) - expect).abs() < 1e-9);
    }

    /// Prefix sums on the QSM(m) agree with the sequential scan for
    /// arbitrary inputs.
    #[test]
    fn prefix_agrees_with_sequential(
        xs in proptest::collection::vec(-100i64..100, 32..=32),
    ) {
        let mp = MachineParams::from_gap(16, 4, 2);
        let r = parallel_bandwidth::algos::prefix::qsm_m(mp, &xs);
        prop_assert!(r.ok);
    }

    /// The randomized h-relation realization delivers for arbitrary
    /// relations and seeds.
    #[test]
    fn randomized_hrelation_delivers(
        sends in proptest::collection::vec(
            proptest::collection::vec((0usize..5, -20i64..20), 0..4),
            5..=5,
        ),
        seed in 0u64..64,
    ) {
        use parallel_bandwidth::pram::{hrelation, hrelation_rand};
        let out = hrelation_rand::realize_randomized(&sends, seed);
        prop_assert!(hrelation::check_delivery(&sends, &out));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Dense vs. active-set execution equivalence (PR 5): on random
    /// unbalanced workloads (1–5% of processors send, random fan-out,
    /// faults injected), the dense all-processor superstep and the
    /// active-set superstep must produce byte-identical recorded traces,
    /// fault ledgers and final states — at pool widths 1 and 8 alike.
    #[test]
    fn sparse_and_dense_superstep_paths_are_byte_identical(
        big_p in any::<bool>(),
        sender_pct in 1usize..=5,
        max_fanout in 1usize..6,
        seed in 0u64..1000,
        drop_rate in 0.0..0.2f64,
        delay_rate in 0.0..0.2f64,
    ) {
        use parallel_bandwidth::prelude::{FaultPlan, FaultSpec, FaultStats};
        use parallel_bandwidth::sim::{BspMachine, Outbox};
        use parallel_bandwidth::trace::RecordingSink;
        use rayon::ThreadPoolBuilder;
        use std::sync::Arc;

        let p = if big_p { 1024 } else { 64 };
        let n_senders = ((p * sender_pct) / 100).max(1);
        // A seed-scrambled sender set (the stride is odd, p a power of two,
        // so the map is a bijection) with per-sender random fan-out.
        let senders: Vec<usize> = (0..n_senders)
            .map(|i| (i * 131 + seed as usize) % p)
            .collect();
        let sends: Vec<(usize, Vec<usize>)> = senders
            .iter()
            .enumerate()
            .map(|(i, &src)| {
                let fanout = 1 + (i + seed as usize) % max_fanout;
                let dests = (0..fanout).map(|j| (src * 7 + j * 13 + 1) % p).collect();
                (src, dests)
            })
            .collect();
        let spec = FaultSpec {
            drop_rate,
            delay_rate,
            max_delay: 3,
            ..FaultSpec::none()
        };

        let run = |sparse: bool, width: usize| -> (Vec<String>, FaultStats, Vec<u64>) {
            ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .expect("pool construction is infallible in the shim")
                .install(|| {
                    let params = MachineParams::from_gap(p, 8, 4);
                    let sink = Arc::new(RecordingSink::new());
                    let mut machine: BspMachine<u64, u64> = BspMachine::new(params, |_| 0);
                    machine.set_sink(sink.clone()).set_trace_label("dense-vs-sparse");
                    machine.set_delivery_hook(Arc::new(FaultPlan::new(spec, seed ^ 0xA5)));
                    let send = |pid: usize, s: &mut u64, inbox: &[u64], out: &mut Outbox<u64>| {
                        *s = s.wrapping_add(inbox.iter().sum::<u64>());
                        if let Some((_, dests)) = sends.iter().find(|(src, _)| *src == pid) {
                            for &d in dests {
                                out.send(d, (pid + d) as u64);
                            }
                        }
                    };
                    let drain = |_pid: usize, s: &mut u64, inbox: &[u64], _out: &mut Outbox<u64>| {
                        *s = s.wrapping_add(inbox.iter().sum::<u64>());
                    };
                    // Same superstep count on both paths: one send step,
                    // then enough idle steps to cover max_delay plus the
                    // final retained-inbox consumption.
                    if sparse {
                        machine.superstep_active(&senders, send);
                        for _ in 0..5 {
                            machine.superstep_active(&[], drain);
                        }
                    } else {
                        machine.superstep(send);
                        for _ in 0..5 {
                            machine.superstep(drain);
                        }
                    }
                    let events: Vec<String> =
                        sink.take().iter().map(|e| e.to_json()).collect();
                    (events, machine.fault_stats(), machine.states().to_vec())
                })
        };

        let baseline = run(false, 1);
        for (sparse, width) in [(true, 1), (false, 8), (true, 8)] {
            let other = run(sparse, width);
            prop_assert_eq!(
                &baseline, &other,
                "sparse={} width={} diverged from the dense 1-thread run",
                sparse, width
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// φ → 1⁻: at extreme loss rates (0.9, 0.95, 0.99) the recovery
    /// protocol must stay *bounded* — rounds never exceed `max_rounds`,
    /// idle time is exactly the bounded-exponential-backoff contract
    /// `Σ_{r=1..rounds} min(base·2^{r−1}, cap)` (drop-only plans leave
    /// nothing in the network to drain, so equality holds even when the
    /// protocol gives up), and a run that did not deliver everything gave
    /// up only after exhausting every round. Percentile accessors must
    /// return `None` on out-of-range `q`, never panic, even on these
    /// degenerate arrival distributions.
    #[test]
    fn recovery_stays_bounded_as_phi_approaches_one(
        phi_idx in 0usize..3,
        fault_seed in any::<u64>(),
        run_seed in 0u64..100,
    ) {
        use parallel_bandwidth::prelude::{FaultPlan, FaultSpec};
        use parallel_bandwidth::sched::recovery::run_with_recovery;
        use parallel_bandwidth::sched::schedulers::OfflineOptimal;
        use parallel_bandwidth::sched::{workload, RecoveryConfig};
        use std::sync::Arc;

        let phi = [0.9, 0.95, 0.99][phi_idx];
        let params = MachineParams::from_gap(8, 4, 4);
        let wl = workload::uniform_random(8, 3, 5);
        let cfg = RecoveryConfig::default();
        let plan = Arc::new(FaultPlan::new(FaultSpec::drop_only(phi), fault_seed));
        let out = run_with_recovery(&wl, &OfflineOptimal, params, run_seed, Some(plan), &cfg);

        prop_assert!(out.rounds <= cfg.max_rounds);
        if !out.delivered_all {
            prop_assert_eq!(out.rounds, cfg.max_rounds, "gave up early");
        }
        // The backoff contract, exactly — a drop-only network has no
        // delayed payloads, so every idle superstep is scheduled backoff.
        let contract: u64 = (1..=out.rounds)
            .map(|r| {
                cfg.backoff_base
                    .checked_shl(r - 1)
                    .unwrap_or(u32::MAX)
                    .min(cfg.backoff_cap) as u64
            })
            .sum();
        prop_assert_eq!(out.backoff_supersteps, contract);
        prop_assert!(out.fault_stats.conserved(), "ledger {:?}", out.fault_stats);

        // Out-of-range quantiles: None, not a panic.
        prop_assert_eq!(out.arrival_percentile(-0.01), None);
        prop_assert_eq!(out.arrival_percentile(1.01), None);
        prop_assert_eq!(out.arrival_percentile(f64::NAN), None);
        let median = out.arrival_percentile(0.5);
        prop_assert_eq!(median.is_some(), !out.arrival_steps.is_empty());
    }

    /// The same φ → 1⁻ extremes through the interval router: the
    /// `StabilityTrace` percentile accessor is total on any `q` even when
    /// retransmission load `α/(1−φ)` swamps the router.
    #[test]
    fn stability_trace_percentiles_are_total_at_extreme_phi(
        phi_idx in 0usize..3,
        fault_seed in any::<u64>(),
    ) {
        use parallel_bandwidth::adversary::adversary::{AqtParams, SteadyAdversary};
        use parallel_bandwidth::adversary::dynamic::AlgorithmB;

        let phi = [0.9, 0.95, 0.99][phi_idx];
        let algo = AlgorithmB { p: 8, m: 4, w: 16, eps: 0.3, seed: 5 };
        let aqt = AqtParams { w: 16, alpha: 2.0, beta: 0.5 };
        let mut adv = SteadyAdversary::new(8, aqt);
        let tr = algo.run_with_faults(&mut adv, 12, phi, fault_seed);

        prop_assert_eq!(tr.delay_percentile(-0.1), None);
        prop_assert_eq!(tr.delay_percentile(1.1), None);
        prop_assert_eq!(tr.delay_percentile(f64::NAN), None);
        // In-range q never panics; Some requires a completed batch.
        for q in [0.0, 0.5, 0.99, 1.0] {
            let _ = tr.delay_percentile(q);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The memoized penalty table ([`PenaltyFn::table`]) is bit-exact
    /// against direct computation for every load in and beyond its span —
    /// the table is built by calling `charge` itself, so any divergence
    /// (recomputation, rounding, wrong span handling) is a bug in the
    /// memoization layer, not floating-point noise. Covers both penalty
    /// variants and the out-of-span fallback path.
    #[test]
    fn penalty_table_bit_exact_vs_direct(
        m in 1usize..128,
        linear in any::<bool>(),
        probe in 0u64..32,
    ) {
        let penalty = if linear { PenaltyFn::Linear } else { PenaltyFn::Exponential };
        let table = penalty.table(m);
        // Every load inside the memoized span 0..=8·m…
        for m_t in 0..=(8 * m as u64) {
            prop_assert_eq!(
                table.charge(m_t).to_bits(),
                penalty.charge(m_t, m).to_bits(),
                "span load {} at m={}", m_t, m
            );
        }
        // …and a probe beyond it (the direct-compute fallback).
        let beyond = 8 * m as u64 + 1 + probe;
        prop_assert_eq!(
            table.charge(beyond).to_bits(),
            penalty.charge(beyond, m).to_bits(),
            "fallback load {} at m={}", beyond, m
        );
        // The histogram-summing entry point agrees too.
        let loads: Vec<u64> = (0..=(4 * m as u64)).chain([beyond]).collect();
        prop_assert_eq!(
            table.total_charge(&loads).to_bits(),
            loads.iter().map(|&l| penalty.charge(l, m)).sum::<f64>().to_bits()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpoint → restore must round-trip [`BspMachine::canonical_hash`]
    /// bit-exactly on arbitrary faulty runs — dense and active-set
    /// execution paths alike, at pool widths 1 and 8. The snapshot is the
    /// recovery driver's rollback target; any state it fails to capture
    /// (retained inboxes, the pending network, the ledger) would silently
    /// fork the replayed timeline.
    #[test]
    fn checkpoint_restore_round_trips_canonical_hash(
        sender_pct in 1usize..=5,
        max_fanout in 1usize..6,
        seed in 0u64..1000,
        drop_rate in 0.0..0.2f64,
        delay_rate in 0.0..0.2f64,
    ) {
        use parallel_bandwidth::prelude::{FaultPlan, FaultSpec};
        use parallel_bandwidth::sim::{BspMachine, Outbox};
        use rayon::ThreadPoolBuilder;
        use std::sync::Arc;

        let p = 64usize;
        let n_senders = ((p * sender_pct) / 100).max(1);
        let senders: Vec<usize> = (0..n_senders)
            .map(|i| (i * 131 + seed as usize) % p)
            .collect();
        let spec = FaultSpec {
            drop_rate,
            delay_rate,
            max_delay: 3,
            ..FaultSpec::none()
        };

        let run = |sparse: bool, width: usize| -> (u64, u64) {
            let senders = senders.clone();
            ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .expect("pool construction is infallible in the shim")
                .install(|| {
                    let params = MachineParams::from_gap(p, 8, 4);
                    let mut m: BspMachine<u64, u64> = BspMachine::new(params, |_| 0);
                    m.set_delivery_hook(Arc::new(FaultPlan::new(spec, seed ^ 0x5A)));
                    // Captures only by reference / `Copy`, so `body` is
                    // itself `Copy` and can feed every superstep below.
                    let senders = &senders;
                    let body = |pid: usize,
                                s: &mut u64,
                                inbox: &[u64],
                                out: &mut Outbox<u64>| {
                        *s = s.wrapping_add(inbox.iter().sum::<u64>());
                        if senders.contains(&pid) {
                            for j in 0..(1 + (pid + seed as usize) % max_fanout) {
                                out.send((pid * 7 + j * 13 + 1) % p, (pid + j) as u64);
                            }
                        }
                    };
                    let step = |m: &mut BspMachine<u64, u64>| {
                        if sparse {
                            let active: Vec<usize> = (0..p).collect();
                            m.superstep_active(&active, body);
                        } else {
                            m.superstep(body);
                        }
                    };
                    // Dirty every snapshot dimension: two faulty supersteps
                    // leave retained inboxes, pending delays and a ledger.
                    step(&mut m);
                    step(&mut m);
                    let ckpt = m.checkpoint();
                    let at_ckpt = m.canonical_hash();
                    // Diverge, then restore: the hash must come back bit-
                    // exactly, ledger included.
                    step(&mut m);
                    step(&mut m);
                    let diverged = m.canonical_hash();
                    m.restore(&ckpt);
                    prop_assert_eq!(m.canonical_hash(), at_ckpt, "restore lost state");
                    prop_assert_eq!(m.fault_stats(), ckpt.fault_stats());
                    // Replaying the diverged future from the snapshot
                    // reproduces its fingerprint — restore is a true rewind.
                    step(&mut m);
                    step(&mut m);
                    prop_assert_eq!(m.canonical_hash(), diverged, "replay forked");
                    (at_ckpt, diverged)
                })
        };

        let baseline = run(false, 1);
        for (sparse, width) in [(true, 1), (false, 8), (true, 8)] {
            prop_assert_eq!(
                baseline,
                run(sparse, width),
                "sparse={} width={} fingerprints diverged from dense width-1",
                sparse,
                width
            );
        }
    }

    /// φ = 0, crash-free: a checkpointed recovery run (state I/O charging
    /// off) must be *byte-identical* to the plain recovery run — same
    /// summary, profiles, arrival steps, ledger, and the same rendered
    /// trace stream. Checkpointing must be a pure observer until a crash
    /// actually happens.
    #[test]
    fn crash_free_checkpointing_is_byte_identical_to_none(
        p_idx in 0usize..3,
        fanout in 1u64..5,
        interval in 1u64..5,
        run_seed in 0u64..100,
    ) {
        use parallel_bandwidth::sched::schedulers::OfflineOptimal;
        use parallel_bandwidth::sched::{
            run_with_checkpointed_recovery_to, run_with_recovery_to, workload,
            CheckpointConfig, RecoveryConfig,
        };
        use parallel_bandwidth::trace::RecordingSink;
        use std::sync::Arc;

        let p = [8, 16, 64][p_idx];
        let params = MachineParams::from_gap(p, 4, 4);
        let wl = workload::uniform_random(p, fanout, 5);
        let cfg = RecoveryConfig::default();

        let plain_sink = Arc::new(RecordingSink::new());
        let plain = run_with_recovery_to(
            plain_sink.clone(), &wl, &OfflineOptimal, params, run_seed, None, &cfg,
        );
        let ck_sink = Arc::new(RecordingSink::new());
        let ck = run_with_checkpointed_recovery_to(
            ck_sink.clone(),
            &wl,
            &OfflineOptimal,
            params,
            run_seed,
            None,
            &cfg,
            &CheckpointConfig { interval, charge_state_io: false, ..CheckpointConfig::default() },
        );

        prop_assert_eq!(ck.rollbacks, 0);
        prop_assert!(!ck.gave_up);
        prop_assert_eq!(ck.replayed_supersteps, 0);
        prop_assert_eq!(ck.recovery.summary, plain.summary);
        prop_assert_eq!(&ck.recovery.profiles, &plain.profiles);
        prop_assert_eq!(&ck.recovery.arrival_steps, &plain.arrival_steps);
        prop_assert_eq!(ck.recovery.fault_stats, plain.fault_stats);
        // With charging off there is no synthesized overhead at all, so
        // the totals collapse onto the plain run's summary.
        prop_assert_eq!(ck.total, plain.summary);
        let plain_jsonl: Vec<String> =
            plain_sink.take().iter().map(|e| e.to_json()).collect();
        let ck_jsonl: Vec<String> =
            ck_sink.take().iter().map(|e| e.to_json()).collect();
        prop_assert_eq!(plain_jsonl, ck_jsonl, "trace streams diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The [`FrontierMask`]'s two-level iteration *is* the sorted-Vec
    /// frontier (PR 10): for arbitrary insertion multisets — duplicates,
    /// out of order, re-used across epoch resets — `iter`, `count`,
    /// `push_to` and the word stream all agree with the sorted, deduped
    /// `Vec` reference, and the empty and full frontiers come out exact at
    /// every universe size (including the 64/65 word-boundary straddle the
    /// `p_extra` offset forces).
    #[test]
    fn frontier_mask_iteration_equals_sorted_vec(
        p_extra in 0usize..=6,
        raw in proptest::collection::vec(0usize..512, 0..=400),
        rounds in 1usize..4,
    ) {
        use parallel_bandwidth::sim::FrontierMask;
        // 62..=68 straddles the one-word/two-word boundary exactly.
        let p = 62 + p_extra;
        let mut mask = FrontierMask::new(p);
        for _ in 0..rounds {
            // Same mask across rounds: `clear` is an epoch bump, so stale
            // bits from earlier rounds must never leak into this one.
            mask.clear();
            let inserted: Vec<usize> = raw.iter().map(|i| i % p).collect();
            for &i in &inserted {
                mask.insert(i);
            }
            let mut want = inserted;
            want.sort_unstable();
            want.dedup();
            prop_assert_eq!(mask.iter().collect::<Vec<_>>(), want.clone());
            prop_assert_eq!(mask.count(), want.len());
            prop_assert_eq!(mask.is_empty(), want.is_empty());
            let mut pushed = Vec::new();
            mask.push_to(&mut pushed);
            prop_assert_eq!(pushed, want.clone());
            for i in 0..p {
                prop_assert_eq!(mask.contains(i), want.binary_search(&i).is_ok());
            }
        }
        // The empty and full frontiers, exactly.
        mask.clear();
        prop_assert!(mask.iter().next().is_none());
        prop_assert_eq!(mask.count(), 0);
        for i in 0..p {
            mask.insert(i);
        }
        prop_assert_eq!(mask.iter().collect::<Vec<_>>(), (0..p).collect::<Vec<_>>());
        prop_assert_eq!(mask.count(), p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mask-discovered vs declared-Vec vs dense execution (PR 10): at *any*
    /// frontier density — empty, a handful, exactly the word boundary,
    /// full — three ways of running the same program must be byte-identical
    /// (trace stream, `canonical_hash`, final states), at pool widths 1 and
    /// 8 alike:
    ///
    /// 1. dense `superstep` every step,
    /// 2. `superstep_active` with the frontier *declared* as the sorted
    ///    `Vec` the test computes by hand, and
    /// 3. `superstep_active(&[])` after the send step, so the frontier is
    ///    discovered purely by iterating the inbox [`FrontierMask`].
    ///
    /// Modes 2 and 3 agreeing is the engine-level statement that mask
    /// iteration ≡ the sorted-Vec frontier; mode 1 agreeing pins the
    /// density crossover's freedom — either branch of
    /// `pbw_sim::density::crossover` gives the same bytes.
    #[test]
    fn masked_declared_and_dense_paths_agree_at_any_density(
        p_sel in 0usize..3,
        sender_pct in 0usize..=100,
        max_fanout in 1usize..6,
        seed in 0u64..1000,
    ) {
        use parallel_bandwidth::sim::{BspMachine, Outbox};
        use parallel_bandwidth::trace::RecordingSink;
        use rayon::ThreadPoolBuilder;
        use std::sync::Arc;

        // 64/72 straddle the mask's word boundary (one exact word, one
        // word plus a ragged tail); 1024 spans many words. All keep g=8.
        let p = [64usize, 72, 1024][p_sel];
        let n_senders = (p * sender_pct) / 100; // 0 ⇒ empty frontier
        // 131 is prime and never equal to p here, so i ↦ (131·i + seed)
        // mod p is a bijection: exactly `n_senders` distinct senders.
        let senders: Vec<usize> = (0..n_senders)
            .map(|i| (i * 131 + seed as usize) % p)
            .collect();
        let is_sender: Vec<bool> = {
            let mut v = vec![false; p];
            for &s in &senders {
                v[s] = true;
            }
            v
        };
        let fanout_of = |src: usize| 1 + (src + seed as usize) % max_fanout;
        // The hand-computed sorted-Vec frontier for the drain superstep:
        // everyone the send step delivered to.
        let receivers: Vec<usize> = {
            let mut r: Vec<usize> = senders
                .iter()
                .flat_map(|&src| (0..fanout_of(src)).map(move |j| (src * 7 + j * 13 + 1) % p))
                .collect();
            r.sort_unstable();
            r.dedup();
            r
        };

        #[derive(Clone, Copy, PartialEq)]
        enum Mode {
            Dense,
            Declared,
            Masked,
        }

        let run = |mode: Mode, width: usize| -> (Vec<String>, Vec<u64>, u64) {
            ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .expect("pool construction is infallible in the shim")
                .install(|| {
                    let params = MachineParams::from_gap(p, 8, 4);
                    let sink = Arc::new(RecordingSink::new());
                    let mut machine: BspMachine<u64, u64> = BspMachine::new(params, |_| 0);
                    machine.set_sink(sink.clone()).set_trace_label("mask-vs-vec");
                    let send = |pid: usize, s: &mut u64, inbox: &[u64], out: &mut Outbox<u64>| {
                        *s = s.wrapping_add(inbox.iter().sum::<u64>());
                        if is_sender[pid] {
                            for j in 0..fanout_of(pid) {
                                out.send((pid * 7 + j * 13 + 1) % p, (pid + j) as u64);
                            }
                        }
                    };
                    let drain = |_pid: usize, s: &mut u64, inbox: &[u64], _out: &mut Outbox<u64>| {
                        *s = s.wrapping_add(inbox.iter().sum::<u64>());
                    };
                    match mode {
                        Mode::Dense => {
                            machine.superstep(send);
                            machine.superstep(drain);
                            machine.superstep(drain); // empty frontier
                        }
                        Mode::Declared => {
                            machine.superstep_active(&senders, send);
                            machine.superstep_active(&receivers, drain);
                            machine.superstep_active(&[], drain);
                        }
                        Mode::Masked => {
                            machine.superstep_active(&senders, send);
                            machine.superstep_active(&[], drain);
                            machine.superstep_active(&[], drain);
                        }
                    }
                    let events: Vec<String> = sink.take().iter().map(|e| e.to_json()).collect();
                    let hash = machine.canonical_hash();
                    (events, machine.states().to_vec(), hash)
                })
        };

        let baseline = run(Mode::Dense, 1);
        for mode in [Mode::Dense, Mode::Declared, Mode::Masked] {
            for width in [1usize, 8] {
                if mode == Mode::Dense && width == 1 {
                    continue;
                }
                let other = run(mode, width);
                prop_assert_eq!(
                    &baseline, &other,
                    "mode={} width={} diverged from the dense width-1 run (p={}, {}% active)",
                    match mode {
                        Mode::Dense => "dense",
                        Mode::Declared => "declared",
                        Mode::Masked => "masked",
                    },
                    width, p, sender_pct
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential sample-sort oracle: for arbitrary (p, n/p, ratio,
    /// skew, sampling, seed), the BSP sample sort is byte-identical
    /// between the dense and sparse engine paths at pool widths 1 and 8 —
    /// rendered trace stream included — and its output equals the
    /// sequential `sort_unstable` oracle.
    #[test]
    fn sample_sort_differential_oracle_across_paths_and_widths(
        p_sel in 0usize..3,
        per in 4usize..=24,
        ratio in 1usize..=8,
        dist_sel in 0usize..4,
        seeded in any::<bool>(),
        seed in 0u64..1000,
    ) {
        use parallel_bandwidth::algos::sample_sort::{
            keyset, run_opts, KeyDist, SampleSortConfig, Sampling,
        };
        use parallel_bandwidth::trace::RecordingSink;
        use rayon::ThreadPoolBuilder;
        use std::sync::Arc;

        let p = [4usize, 8, 16][p_sel];
        let dist = KeyDist::ALL[dist_sel];
        let params = MachineParams::from_gap(p, 4, 4);
        let cfg = SampleSortConfig {
            ratio,
            sampling: if seeded { Sampling::Seeded } else { Sampling::Regular },
            seed,
        };
        let inputs = keyset(dist, p * per, seed);
        let mut oracle = inputs.clone();
        oracle.sort_unstable();

        let run = |sparse: bool, width: usize| {
            ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .expect("pool construction is infallible in the shim")
                .install(|| {
                    let sink = Arc::new(RecordingSink::new());
                    let out = run_opts(params, &inputs, cfg, sparse, None, Some(sink.clone()));
                    let events: Vec<String> =
                        sink.take().iter().map(|e| e.to_json()).collect();
                    (events, out.output, out.summary, out.max_bucket)
                })
        };

        let baseline = run(false, 1);
        prop_assert_eq!(
            &baseline.1, &oracle,
            "dense width-1 output differs from sort_unstable ({:?}, p={}, per={})",
            dist, p, per
        );
        for (sparse, width) in [(true, 1), (false, 8), (true, 8)] {
            let other = run(sparse, width);
            prop_assert_eq!(
                &baseline, &other,
                "sparse={} width={} diverged from the dense 1-thread sort",
                sparse, width
            );
        }
    }
}
