//! Allocation budget for the superstep hot path.
//!
//! The delivery paths of [`pbw_sim::BspMachine`], [`pbw_sim::QsmMachine`]
//! and [`pbw_pram::Pram`] are designed to be allocation-free at steady
//! state: message arenas, outboxes, contexts, slot tables and audit scratch
//! are all recycled, so once every recycled buffer has grown to its working
//! size, a superstep performs a *constant* number of heap allocations no
//! matter how many messages it moves.
//!
//! This suite proves that contract with a counting [`GlobalAlloc`] wrapper:
//! for each engine it measures allocations per superstep at a small and at a
//! 16× larger message volume (after a warmup that lets the recycled buffers
//! reach their high-water marks) and asserts the two counts are *equal* —
//! O(1) in volume — and under a small absolute budget. The remaining
//! constant is the per-superstep profile snapshot (one `SuperstepProfile`
//! clone) plus the thread-pool dispatch (O(threads), volume-independent),
//! which the second test bounds at a parallel pool width too.
//!
//! The whole suite lives in one `#[test]` per pool width: the counter is
//! process-global, so measured sections must not run concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use parallel_bandwidth::algos::sample_sort::{
    keyset, KeyDist, SampleSortConfig, SampleSortProgram, Sampling,
};
use parallel_bandwidth::models::MachineParams;
use parallel_bandwidth::pram::{AccessMode, Pram};
use parallel_bandwidth::sim::{BspMachine, QsmMachine};

/// Counts every allocation and reallocation routed through the global
/// allocator (deallocations are free and irrelevant to the budget).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const P: usize = 64;
const WARMUP: u64 = 8;
const MEASURED: u64 = 16;

/// Allocations per steady-state BSP superstep at the given per-processor
/// fanout (messages per processor per superstep).
fn bsp_allocs_per_superstep(fanout: usize) -> u64 {
    let mp = MachineParams::from_gap(P, 2, 4);
    let mut bsp: BspMachine<u64, u64> = BspMachine::new(mp, |pid| pid as u64);
    let round = |bsp: &mut BspMachine<u64, u64>| {
        bsp.superstep(|pid, state, inbox, out| {
            *state = state.wrapping_add(inbox.iter().sum::<u64>());
            for k in 0..fanout {
                out.send((pid + k + 1) % P, (pid * fanout + k) as u64);
            }
        });
    };
    for _ in 0..WARMUP {
        round(&mut bsp);
    }
    let before = allocs();
    for _ in 0..MEASURED {
        round(&mut bsp);
    }
    (allocs() - before) / MEASURED
}

/// Allocations per steady-state QSM phase at the given per-processor
/// read+write request count.
fn qsm_allocs_per_phase(reqs: usize) -> u64 {
    let mp = MachineParams::from_gap(P, 2, 4);
    // Reads target the upper half of shared memory, writes the lower half,
    // so no location is ever both read and written in one phase.
    let mut qsm: QsmMachine<u64> = QsmMachine::new(mp, 2 * P, |pid| pid as u64);
    let round = |qsm: &mut QsmMachine<u64>| {
        qsm.phase(|pid, state, results, ctx| {
            *state = state.wrapping_add(results.len() as u64);
            for k in 0..reqs {
                ctx.read(P + (pid + k) % P);
                ctx.write(pid, k as i64);
            }
        });
    };
    for _ in 0..WARMUP {
        round(&mut qsm);
    }
    let before = allocs();
    for _ in 0..MEASURED {
        round(&mut qsm);
    }
    (allocs() - before) / MEASURED
}

/// Allocations per steady-state PRAM step at the given per-processor
/// operation count.
fn pram_allocs_per_step(ops: usize) -> u64 {
    let mut pram = Pram::new(AccessMode::Erew, P);
    let round = |pram: &mut Pram| {
        pram.step(P, |pid, ctx| {
            // Re-reading one's own cell is legal under EREW and scales the
            // access volume without changing the access pattern.
            let mut v = 0;
            for _ in 0..ops {
                v = ctx.read(pid);
            }
            ctx.write(pid, v + 1);
        });
    };
    for _ in 0..WARMUP {
        round(&mut pram);
    }
    let before = allocs();
    for _ in 0..MEASURED {
        round(&mut pram);
    }
    (allocs() - before) / MEASURED
}

/// Allocations per steady-state superstep on a machine that is being
/// checkpointed and rolled back: snapshot capture itself allocates (it
/// clones states, inboxes and the pending queue — that cost is priced by
/// the recovery driver as an h-relation, not hidden), but the supersteps
/// *between* snapshots and the supersteps replayed *after* a restore must
/// stay on the allocation-free hot path. Returns the per-superstep counts
/// (between snapshots, after restore).
fn checkpointed_bsp_allocs_per_superstep(fanout: usize) -> (u64, u64) {
    let mp = MachineParams::from_gap(P, 2, 4);
    let mut bsp: BspMachine<u64, u64> = BspMachine::new(mp, |pid| pid as u64);
    let round = |bsp: &mut BspMachine<u64, u64>| {
        bsp.superstep(|pid, state, inbox, out| {
            *state = state.wrapping_add(inbox.iter().sum::<u64>());
            for k in 0..fanout {
                out.send((pid + k + 1) % P, (pid * fanout + k) as u64);
            }
        });
    };
    for _ in 0..WARMUP {
        round(&mut bsp);
    }
    let ckpt = bsp.checkpoint();
    let before = allocs();
    for _ in 0..MEASURED {
        round(&mut bsp);
    }
    let between = (allocs() - before) / MEASURED;
    bsp.restore(&ckpt);
    let before = allocs();
    for _ in 0..MEASURED {
        round(&mut bsp);
    }
    let replayed = (allocs() - before) / MEASURED;
    (between, replayed)
}

/// Allocations per steady-state *active-set* superstep with a fixed
/// 64-sender workload on a `p`-processor machine: the sparse path's
/// per-superstep cost must not depend on `p` at all, so the count at
/// p = 1k and p = 64k must come out equal.
fn sparse_bsp_allocs_per_superstep(p: usize) -> u64 {
    let mp = MachineParams::from_gap(p, 2, 4);
    let mut bsp: BspMachine<u64, u64> = BspMachine::new(mp, |pid| pid as u64);
    let active: Vec<usize> = (0..64).map(|i| i * (p / 64)).collect();
    let stride = p / 64;
    let round = |bsp: &mut BspMachine<u64, u64>| {
        bsp.superstep_active(&active, |pid, state, inbox, out| {
            *state = state.wrapping_add(inbox.iter().sum::<u64>());
            // Only the declared senders forward; their receivers (woken
            // automatically next superstep to consume their inboxes) stay
            // silent, keeping the frontier at a fixed 64 + 256 processors.
            if pid % stride == 0 {
                for k in 0..4usize {
                    out.send((pid + k + 1) % p, (pid + k) as u64);
                }
            }
        });
    };
    for _ in 0..WARMUP {
        round(&mut bsp);
    }
    let before = allocs();
    for _ in 0..MEASURED {
        round(&mut bsp);
    }
    (allocs() - before) / MEASURED
}

/// Allocations per steady-state *mask-discovered* superstep (PR 10): after
/// one seeding superstep the declared active set stays empty, so every
/// subsequent frontier is discovered purely by iterating the inbox
/// [`pbw_models::FrontierMask`]. The workload is a 64-member ring inside a
/// `p`-processor machine (each member messages the next, so the frontier
/// self-sustains without redeclaration). Returns allocations per superstep
/// once every recycled buffer has reached its high-water mark.
fn masked_bsp_allocs_per_superstep(p: usize, fanout: usize) -> u64 {
    let mp = MachineParams::from_gap(p, 2, 4);
    let mut bsp: BspMachine<u64, u64> = BspMachine::new(mp, |pid| pid as u64);
    let stride = p / 64;
    let members: Vec<usize> = (0..64).map(|i| i * stride).collect();
    let round = |bsp: &mut BspMachine<u64, u64>, active: &[usize]| {
        bsp.superstep_active(active, |pid, state, inbox, out| {
            *state = state.wrapping_add(inbox.iter().sum::<u64>());
            if pid % stride == 0 {
                let i = pid / stride;
                for k in 0..fanout {
                    out.send(((i + k + 1) % 64) * stride, (pid + k) as u64);
                }
            }
        });
    };
    // Seed the mask once, then let it carry the frontier unaided.
    round(&mut bsp, &members);
    for _ in 0..WARMUP {
        round(&mut bsp, &[]);
    }
    let before = allocs();
    for _ in 0..MEASURED {
        round(&mut bsp, &[]);
    }
    (allocs() - before) / MEASURED
}

/// Allocations per steady-state sample-sort *exchange* superstep at the
/// given per-processor block size. The program is driven through its real
/// prefix (local sort, sample gather, splitter selection and broadcast) so
/// the exchange runs with splitters installed, then the exchange body is
/// re-issued as a standing workload: splitter storage short-circuits before
/// touching the heap, the bucket partition walks the resident key vector,
/// and every send lands in a recycled arena — so the count must not move
/// between a 1× and a 16× block.
fn sample_sort_exchange_allocs_per_superstep(per: usize) -> u64 {
    let p = 8;
    let mp = MachineParams::from_gap(p, 2, 4);
    let cfg = SampleSortConfig {
        ratio: 4,
        sampling: Sampling::Seeded,
        seed: 7,
    };
    let prog = SampleSortProgram::new(p, keyset(KeyDist::Uniform, p * per, 7), cfg);
    let mut machine = prog.machine(mp);
    for _ in 0..prog.exchange_step() {
        prog.apply_next(&mut machine, false);
    }
    for _ in 0..WARMUP {
        prog.step_exchange(&mut machine);
    }
    let before = allocs();
    for _ in 0..MEASURED {
        prog.step_exchange(&mut machine);
    }
    (allocs() - before) / MEASURED
}

/// Per-superstep allocation count must not grow with message volume, and
/// must stay under a small absolute budget. `budget` covers the profile
/// snapshot, the amortized `profiles` push and the pool dispatch; it is
/// deliberately generous so the test fails on O(volume) regressions, not on
/// constant-factor drift.
fn assert_o1(engine: &str, low: u64, high: u64, budget: u64) {
    assert_o1_slack(engine, low, high, budget, 0);
}

/// [`assert_o1`] with a tolerance for sub-superstep jitter. The counts are
/// truncated averages over `MEASURED` supersteps, so on a multi-threaded
/// pool a single stray allocation anywhere in the window — a worker waking
/// for the first time in a while, a lazy std init on a pool thread — can
/// flip the quotient by one. The O(volume) regressions this suite exists to
/// catch show up as ≥ fanout (64+) extra allocations per superstep, so a
/// slack of a couple loses no signal.
fn assert_o1_slack(engine: &str, low: u64, high: u64, budget: u64, slack: u64) {
    assert!(
        low.abs_diff(high) <= slack,
        "{engine}: allocations per superstep grew with message volume \
         ({low} at 1x vs {high} at 16x, slack {slack})"
    );
    assert!(
        high <= budget,
        "{engine}: {high} allocations per superstep exceeds the budget of {budget}"
    );
}

/// Serializes the two pool-width tests: the allocation counter is
/// process-global, so concurrent measurements would pollute each other.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn steady_state_supersteps_allocate_o1_sequential() {
    let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| {
            assert_o1(
                "bsp",
                bsp_allocs_per_superstep(1),
                bsp_allocs_per_superstep(16),
                16,
            );
            assert_o1("qsm", qsm_allocs_per_phase(1), qsm_allocs_per_phase(16), 16);
            assert_o1(
                "pram",
                pram_allocs_per_step(1),
                pram_allocs_per_step(16),
                16,
            );
        });
}

/// Checkpoint/rollback recovery must not perturb the hot path: supersteps
/// between snapshots and supersteps replayed after a restore allocate O(1)
/// in message volume, exactly like an uncheckpointed run. (The snapshot
/// clone itself is allowed to allocate — it happens every k supersteps at
/// the barrier, not per message.)
#[test]
fn checkpointed_supersteps_stay_on_the_allocation_free_path() {
    let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| {
            let (between_lo, replay_lo) = checkpointed_bsp_allocs_per_superstep(1);
            let (between_hi, replay_hi) = checkpointed_bsp_allocs_per_superstep(16);
            assert_o1("bsp between snapshots", between_lo, between_hi, 16);
            assert_o1("bsp after restore", replay_lo, replay_hi, 16);
            // And checkpointing must not have knocked the run off the plain
            // steady-state budget measured by the uncheckpointed probe.
            assert_eq!(
                between_hi,
                bsp_allocs_per_superstep(16),
                "a superstep between snapshots allocates more than an uncheckpointed one"
            );
        });
}

/// The active-set path (PR 5): with the sender set held fixed at 64
/// processors, allocations per superstep must be identical on a 1k- and a
/// 64k-processor machine — any O(p) clear or per-processor buffer sneaking
/// back into the sparse path shows up here as a count difference.
#[test]
fn sparse_superstep_allocations_do_not_scale_with_p() {
    let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| {
            let small = sparse_bsp_allocs_per_superstep(1 << 10);
            let large = sparse_bsp_allocs_per_superstep(1 << 16);
            assert_eq!(
                small, large,
                "sparse path allocations scale with p ({small} at p=1k vs {large} at p=64k)"
            );
            assert!(
                small <= 16,
                "{small} allocations per sparse superstep exceeds the budget of 16"
            );
        });
}

/// The mask-discovered frontier path (PR 10): a masked superstep allocates
/// *nothing* at steady state — mask insertion, word iteration and the O(1)
/// epoch clear never touch the heap, at any machine size and any message
/// volume. What remains per superstep is exactly the retained profile
/// snapshot every execution path pays (the per-superstep `SuperstepProfile`
/// history owns its injection histogram, so it cannot be recycled), which
/// the test pins as an exact constant: any allocation the mask machinery
/// itself performed would push the count above the snapshot floor.
#[test]
fn masked_supersteps_allocate_nothing_at_steady_state() {
    let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| {
            let small = masked_bsp_allocs_per_superstep(1 << 10, 4);
            let large = masked_bsp_allocs_per_superstep(1 << 16, 4);
            let heavy = masked_bsp_allocs_per_superstep(1 << 10, 16);
            assert_eq!(
                small, large,
                "masked-path allocations scale with p ({small} at p=1k vs {large} at p=64k)"
            );
            assert_eq!(
                small, heavy,
                "masked-path allocations scale with volume ({small} at 4x vs {heavy} at 16x)"
            );
            // The snapshot constant is exactly 2: `snapshot_reset` clones
            // the accumulated profile for the report and `profiles.push`
            // clones it again for the retained history — each clone owns a
            // non-empty injection histogram, so neither can be recycled.
            // Anything above 2 is an allocation the mask machinery itself
            // performed; the dense path's own constant is higher (its
            // all-processor pass keeps extra scratch), so the masked path
            // must also stay strictly at the floor.
            assert_eq!(
                small, 2,
                "{small} allocations per masked superstep; the mask path must \
                 allocate nothing beyond the two profile-snapshot clones"
            );
        });
}

/// The sample-sort all-to-all (PR 8): a *real-algorithm* superstep, not a
/// synthetic fanout loop, must sit on the same allocation-free steady
/// state. Every key moves every superstep, so a 16× block means 16× the
/// message volume through the same recycled arenas — any per-key or
/// per-bucket allocation sneaking into the exchange closure shows up as a
/// count difference between the two volumes.
#[test]
fn sample_sort_exchange_stays_on_the_allocation_free_path() {
    let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| {
            assert_o1(
                "sample-sort exchange",
                sample_sort_exchange_allocs_per_superstep(32),
                sample_sort_exchange_allocs_per_superstep(512),
                16,
            );
        });
}

#[test]
fn steady_state_supersteps_allocate_o1_parallel() {
    let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    // Autotuned chunk sizing is timing-fed: the sequential cutoff can
    // engage at one message volume and not the other, which legitimately
    // flickers the dispatch's constant allocation count by one or two.
    // Pin chunking so dispatch allocations are a pure function of p and
    // the counts compare exactly; results are unaffected by the pin.
    rayon::tune::pin_min_chunk(Some(8));
    rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap()
        .install(|| {
            // The pool dispatch allocates O(threads) per parallel pass —
            // still independent of message volume. Slack 2: worker wakeups
            // are demand-driven, so one-off allocations (a thread's lazy
            // init, a first-wake registration) can land inside either
            // measured window; see assert_o1_slack.
            assert_o1_slack(
                "bsp",
                bsp_allocs_per_superstep(1),
                bsp_allocs_per_superstep(16),
                256,
                2,
            );
            assert_o1_slack(
                "qsm",
                qsm_allocs_per_phase(1),
                qsm_allocs_per_phase(16),
                256,
                2,
            );
            assert_o1_slack(
                "pram",
                pram_allocs_per_step(1),
                pram_allocs_per_step(16),
                256,
                2,
            );
        });
    rayon::tune::pin_min_chunk(None);
}
