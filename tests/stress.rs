//! Large-scale stress tests, with a size-scaled smoke tier.
//!
//! Each scenario is parameterized by a size divisor. The full-size variants
//! are `#[ignore]`d (run with `cargo test --release -- --ignored`); each
//! also has an always-on `_smoke` variant shrunk by `PBW_STRESS_SCALE` (a
//! divisor, default 16 — set it to 1 to run the smoke tier at full size,
//! or higher to shrink further on slow machines). The invariants checked
//! are scale-agnostic; only the absolute-size assertions (message counts,
//! tight ratio bounds) are gated on full size.

use parallel_bandwidth::models::{MachineParams, PenaltyFn};
use parallel_bandwidth::prelude::*;

/// The smoke-tier size divisor from `PBW_STRESS_SCALE` (default 16).
fn stress_scale() -> u64 {
    std::env::var("PBW_STRESS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(16)
}

fn schedule_many_messages(scale: u64) {
    let p = (4096 / scale).max(64) as usize;
    let m = p / 16;
    let per_proc = (256 / scale).max(16);
    let wl = workload::uniform_random(p, per_proc, 1); // ~1M messages at scale 1
    if scale == 1 {
        assert!(wl.n_flits() >= 1_000_000);
    }
    let sched = UnbalancedSend::new(0.2).schedule(&wl, m, 7);
    validate_schedule(&sched, &wl).unwrap();
    let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
    // The w.h.p. guarantee needs ε²m large; the shrunken machine gets a
    // correspondingly looser bound.
    let bound = if scale == 1 { 1.3 } else { 2.5 };
    assert!(cost.ratio_to_opt < bound, "ratio {}", cost.ratio_to_opt);
}

fn engine_end_to_end(scale: u64) {
    let p = (4096 / scale).max(64) as usize;
    let mp = MachineParams::from_bandwidth(p, p / 16, 8);
    let wl = workload::single_hot_sender(p, 100_000 / scale, 16, 2);
    let sched = UnbalancedSend::new(0.2).schedule(&wl, mp.m, 3);
    let exec = parallel_bandwidth::sched::exec::run_schedule_on_bsp(&wl, &sched, mp);
    let floor = if scale == 1 { 8.0 } else { 2.0 };
    assert!(
        exec.summary.bsp_separation() > floor,
        "sep {}",
        exec.summary.bsp_separation()
    );
}

fn sort_many_keys(scale: u64) {
    use rand::{Rng, SeedableRng};
    let p = (512 / scale).max(64) as usize;
    let per_proc = (256 / scale).max(16) as usize;
    let mp = MachineParams::from_gap(p, 8, 4);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    let keys: Vec<i64> = (0..p * per_proc)
        .map(|_| rng.gen_range(-1_000_000..1_000_000))
        .collect();
    let r = parallel_bandwidth::algos::sort::qsm_m(mp, &keys);
    assert!(r.ok);
}

fn dynamic_router_long_run(scale: u64) {
    let (p, m, w) = (64usize, 8usize, 64u64);
    let params = AqtParams {
        w,
        alpha: 4.0,
        beta: 0.25,
    };
    let mut adv = SteadyAdversary::new(p, params);
    let intervals = (10_000 / scale).max(200);
    let trace = AlgorithmB {
        p,
        m,
        w,
        eps: 0.3,
        seed: 5,
    }
    .run(&mut adv, intervals);
    assert!(trace.looks_stable());
    // Conservation at scale.
    let pending = *trace.queue_msgs.last().unwrap();
    assert_eq!(trace.delivered + pending, trace.injected);
}

fn list_ranking_many_nodes(scale: u64) {
    let n = ((1usize << 16) / scale as usize).max(1024);
    let list = parallel_bandwidth::algos::list_ranking::random_list(n, 4);
    let run = parallel_bandwidth::algos::list_ranking::pram_list_ranking(&list, 5);
    assert!(run.ok);
    assert!(run.rounds < 80, "rounds {}", run.rounds);
}

#[test]
#[ignore = "large-scale stress; run with --ignored"]
fn schedule_a_million_messages() {
    schedule_many_messages(1);
}

#[test]
fn schedule_many_messages_smoke() {
    schedule_many_messages(stress_scale());
}

#[test]
#[ignore = "large-scale stress; run with --ignored"]
fn engine_4096_processors_end_to_end() {
    engine_end_to_end(1);
}

#[test]
fn engine_end_to_end_smoke() {
    engine_end_to_end(stress_scale());
}

#[test]
#[ignore = "large-scale stress; run with --ignored"]
fn sort_128k_keys_on_the_machine() {
    sort_many_keys(1);
}

#[test]
fn sort_keys_smoke() {
    sort_many_keys(stress_scale());
}

#[test]
#[ignore = "large-scale stress; run with --ignored"]
fn dynamic_router_ten_thousand_intervals() {
    dynamic_router_long_run(1);
}

#[test]
fn dynamic_router_smoke() {
    dynamic_router_long_run(stress_scale());
}

#[test]
#[ignore = "large-scale stress; run with --ignored"]
fn list_ranking_65k_nodes() {
    list_ranking_many_nodes(1);
}

#[test]
fn list_ranking_smoke() {
    list_ranking_many_nodes(stress_scale());
}
