//! Large-scale stress tests (ignored by default; run with
//! `cargo test --release -- --ignored`). These push the engines and
//! schedulers to the sizes the experiment sweeps top out at, checking that
//! nothing degrades quadratically and every invariant survives scale.

use parallel_bandwidth::models::{MachineParams, PenaltyFn};
use parallel_bandwidth::prelude::*;

#[test]
#[ignore = "large-scale stress; run with --ignored"]
fn schedule_a_million_messages() {
    let p = 4096usize;
    let m = 256usize;
    let wl = workload::uniform_random(p, 256, 1); // ~1M messages
    assert!(wl.n_flits() >= 1_000_000);
    let sched = UnbalancedSend::new(0.2).schedule(&wl, m, 7);
    validate_schedule(&sched, &wl).unwrap();
    let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
    assert!(cost.ratio_to_opt < 1.3, "ratio {}", cost.ratio_to_opt);
}

#[test]
#[ignore = "large-scale stress; run with --ignored"]
fn engine_4096_processors_end_to_end() {
    let mp = MachineParams::from_bandwidth(4096, 256, 8);
    let wl = workload::single_hot_sender(4096, 100_000, 16, 2);
    let sched = UnbalancedSend::new(0.2).schedule(&wl, mp.m, 3);
    let exec = parallel_bandwidth::sched::exec::run_schedule_on_bsp(&wl, &sched, mp);
    assert!(exec.summary.bsp_separation() > 8.0);
}

#[test]
#[ignore = "large-scale stress; run with --ignored"]
fn sort_128k_keys_on_the_machine() {
    use rand::{Rng, SeedableRng};
    let mp = MachineParams::from_gap(512, 8, 4);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    let keys: Vec<i64> = (0..512 * 256).map(|_| rng.gen_range(-1_000_000..1_000_000)).collect();
    let r = parallel_bandwidth::algos::sort::qsm_m(mp, &keys);
    assert!(r.ok);
}

#[test]
#[ignore = "large-scale stress; run with --ignored"]
fn dynamic_router_ten_thousand_intervals() {
    let (p, m, w) = (64usize, 8usize, 64u64);
    let params = AqtParams { w, alpha: 4.0, beta: 0.25 };
    let mut adv = SteadyAdversary::new(p, params);
    let trace = AlgorithmB { p, m, w, eps: 0.3, seed: 5 }.run(&mut adv, 10_000);
    assert!(trace.looks_stable());
    // Conservation at scale.
    let pending = *trace.queue_msgs.last().unwrap();
    assert_eq!(trace.delivered + pending, trace.injected);
}

#[test]
#[ignore = "large-scale stress; run with --ignored"]
fn list_ranking_65k_nodes() {
    let list = parallel_bandwidth::algos::list_ranking::random_list(1 << 16, 4);
    let run = parallel_bandwidth::algos::list_ranking::pram_list_ranking(&list, 5);
    assert!(run.ok);
    assert!(run.rounds < 80, "rounds {}", run.rounds);
}
