//! Large-scale stress tests, with a size-scaled smoke tier.
//!
//! Each scenario is parameterized by a size divisor and runs always-on in
//! two tiers, both driven by `PBW_STRESS_SCALE` (a divisor, default 16 —
//! set it to 1 to run everything at full size, or higher to shrink further
//! on slow machines): a `_smoke` variant shrunk by the full divisor, and a
//! large variant at one-eighth of it (so the default runs it at half
//! size). The invariants checked are scale-agnostic; only the
//! absolute-size assertions (message counts, tight ratio bounds) are gated
//! on full size. The broadcast-tree scenario smokes at a milder divisor
//! than the rest: its per-superstep cost is O(frontier + messages) on the
//! active-set engine, so big machines are cheap.

use parallel_bandwidth::models::{MachineParams, PenaltyFn};
use parallel_bandwidth::prelude::*;

/// The smoke-tier size divisor from `PBW_STRESS_SCALE` (default 16).
fn stress_scale() -> u64 {
    std::env::var("PBW_STRESS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(16)
}

/// The large-tier divisor: an eighth of the smoke divisor, floored at
/// full size. These were `#[ignore]`d full-size-only runs before PR 5;
/// running them scaled keeps the big configurations continuously covered.
fn full_scale() -> u64 {
    (stress_scale() / 8).max(1)
}

fn schedule_many_messages(scale: u64) {
    let p = (4096 / scale).max(64) as usize;
    let m = p / 16;
    let per_proc = (256 / scale).max(16);
    let wl = workload::uniform_random(p, per_proc, 1); // ~1M messages at scale 1
    if scale == 1 {
        assert!(wl.n_flits() >= 1_000_000);
    }
    let sched = UnbalancedSend::new(0.2).schedule(&wl, m, 7);
    validate_schedule(&sched, &wl).unwrap();
    let cost = evaluate_schedule(&sched, &wl, m, PenaltyFn::Exponential);
    // The w.h.p. guarantee needs ε²m large; the shrunken machine gets a
    // correspondingly looser bound.
    let bound = if scale == 1 { 1.3 } else { 2.5 };
    assert!(cost.ratio_to_opt < bound, "ratio {}", cost.ratio_to_opt);
}

fn engine_end_to_end(scale: u64) {
    let p = (4096 / scale).max(64) as usize;
    let mp = MachineParams::from_bandwidth(p, p / 16, 8);
    let wl = workload::single_hot_sender(p, 100_000 / scale, 16, 2);
    let sched = UnbalancedSend::new(0.2).schedule(&wl, mp.m, 3);
    let exec = parallel_bandwidth::sched::exec::run_schedule_on_bsp(&wl, &sched, mp);
    let floor = if scale == 1 { 8.0 } else { 2.0 };
    assert!(
        exec.summary.bsp_separation() > floor,
        "sep {}",
        exec.summary.bsp_separation()
    );
}

fn sort_many_keys(scale: u64) {
    use rand::{Rng, SeedableRng};
    let p = (512 / scale).max(64) as usize;
    let per_proc = (256 / scale).max(16) as usize;
    let mp = MachineParams::from_gap(p, 8, 4);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    let keys: Vec<i64> = (0..p * per_proc)
        .map(|_| rng.gen_range(-1_000_000..1_000_000))
        .collect();
    let r = parallel_bandwidth::algos::sort::qsm_m(mp, &keys);
    assert!(r.ok);
}

fn dynamic_router_long_run(scale: u64) {
    let (p, m, w) = (64usize, 8usize, 64u64);
    let params = AqtParams {
        w,
        alpha: 4.0,
        beta: 0.25,
    };
    let mut adv = SteadyAdversary::new(p, params);
    let intervals = (10_000 / scale).max(200);
    let trace = AlgorithmB {
        p,
        m,
        w,
        eps: 0.3,
        seed: 5,
    }
    .run(&mut adv, intervals);
    assert!(trace.looks_stable());
    // Conservation at scale.
    let pending = *trace.queue_msgs.last().unwrap();
    assert_eq!(trace.delivered + pending, trace.injected);
}

fn list_ranking_many_nodes(scale: u64) {
    let n = ((1usize << 16) / scale as usize).max(1024);
    let list = parallel_bandwidth::algos::list_ranking::random_list(n, 4);
    let run = parallel_bandwidth::algos::list_ranking::pram_list_ranking(&list, 5);
    assert!(run.ok);
    assert!(run.rounds < 80, "rounds {}", run.rounds);
}

/// Fan-out-4 broadcast tree on the active-set engine: only the frontier
/// (the level being relayed plus the processors whose inboxes just landed)
/// is ever iterated, so a quarter-million-processor broadcast is smoke-tier
/// cheap. Checks exact single delivery to every processor.
fn broadcast_tree_sparse(scale: u64) {
    let p = ((1usize << 18) / scale as usize).max(1024);
    let mp = MachineParams::from_gap(p, 16, 8);
    let mut machine: BspMachine<u64, u32> = BspMachine::new(mp, |_| 0);
    machine.superstep_active(&[0], |pid, _s, _in, out| {
        if pid == 0 {
            for c in 1..=4usize {
                if c < p {
                    out.send(c, 1);
                }
            }
        }
    });
    // Relay rounds: a processor that just received the token forwards it
    // to its four children. Nobody is declared active — the frontier is
    // exactly the processors with retained inboxes, discovered by the
    // engine. Extra rounds past the deepest level are empty-frontier
    // no-ops, so over-running is harmless.
    let relay =
        |pid: usize, s: &mut u64, inbox: &[u32], out: &mut parallel_bandwidth::sim::Outbox<u32>| {
            if pid != 0 && !inbox.is_empty() {
                *s += inbox.len() as u64;
                for c in 1..=4usize {
                    let child = 4 * pid + c;
                    if child < p {
                        out.send(child, 1);
                    }
                }
            }
        };
    for _ in 0..12 {
        machine.superstep_active(&[], relay);
    }
    let states = machine.states();
    assert_eq!(
        states.iter().sum::<u64>(),
        (p - 1) as u64,
        "broadcast did not reach every processor exactly once"
    );
    assert!(states.iter().all(|&s| s <= 1), "duplicate deliveries");
    if scale == 1 {
        assert_eq!(p, 1 << 18);
    }
}

#[test]
fn schedule_a_million_messages() {
    schedule_many_messages(full_scale());
}

#[test]
fn schedule_many_messages_smoke() {
    schedule_many_messages(stress_scale());
}

#[test]
fn engine_4096_processors_end_to_end() {
    engine_end_to_end(full_scale());
}

#[test]
fn engine_end_to_end_smoke() {
    engine_end_to_end(stress_scale());
}

#[test]
fn sort_128k_keys_on_the_machine() {
    sort_many_keys(full_scale());
}

#[test]
fn sort_keys_smoke() {
    sort_many_keys(stress_scale());
}

#[test]
fn dynamic_router_ten_thousand_intervals() {
    dynamic_router_long_run(full_scale());
}

#[test]
fn dynamic_router_smoke() {
    dynamic_router_long_run(stress_scale());
}

#[test]
fn list_ranking_65k_nodes() {
    list_ranking_many_nodes(full_scale());
}

#[test]
fn list_ranking_smoke() {
    list_ranking_many_nodes(stress_scale());
}

#[test]
fn broadcast_tree_full() {
    broadcast_tree_sparse(full_scale());
}

#[test]
fn broadcast_tree_smoke() {
    // The active-set engine makes large broadcasts cheap, so this smoke
    // runs at a quarter of the usual divisor (p = 65536 by default).
    broadcast_tree_sparse((stress_scale() / 4).max(1));
}
