//! Cross-thread-count determinism conformance: the headline proof that the
//! real thread pool behind the `rayon` shim is safe to use in the engines.
//!
//! Every scenario below renders one run — its full trace stream (JSONL,
//! byte-exact), its fault ledger, its final processor states, its costs —
//! to a single string, then executes that run under thread-pool widths
//! 1, 2 and 8 via [`rayon::ThreadPool::install`]. The three strings must
//! be **byte-identical**: width 1 is the sequential oracle, so any
//! scheduling-order leak (a fate drawn in pool order, a reduction merged
//! in completion order, a trace event recorded from a worker) shows up as
//! a diff, not as a flaky test.
//!
//! Covered surfaces: both simulator engines (BSP with a fault hook, QSM
//! with a fault hook), the PRAM engine, the offline schedule audit path,
//! the ack/retransmit recovery protocol (residual schedules under loss),
//! and the full `faults` experiment sweep (which parallelizes over sweep
//! points internally). Property tests then quantify over seeds, machine
//! shapes and drop rates.

mod common;

use std::sync::Arc;

use common::{assert_width_independent, jsonl};
use parallel_bandwidth::models::MachineParams;
use parallel_bandwidth::models::PenaltyFn;
use parallel_bandwidth::pram::{AccessMode, Pram};
use parallel_bandwidth::prelude::{FaultPlan, FaultSpec};
use parallel_bandwidth::sched::schedule::audit_schedule;
use parallel_bandwidth::sched::schedulers::{Scheduler, UnbalancedSend};
use parallel_bandwidth::sched::{
    evaluate_schedule, recovery::run_with_recovery_to, validate_schedule, workload, RecoveryConfig,
};
use parallel_bandwidth::sim::{BspMachine, DeliveryHook, QsmMachine};
use parallel_bandwidth::trace::{RecordingSink, TraceSink};
use proptest::prelude::*;

/// A faulty BSP run rendered to bytes: trace JSONL, fault ledger, final
/// per-processor states.
fn render_bsp(p: usize, supersteps: usize, phi: f64, seed: u64) -> String {
    let params = MachineParams::from_gap(p, 4, 8);
    let sink = Arc::new(RecordingSink::new());
    let mut machine: BspMachine<u64, u64> = BspMachine::new(params, |pid| pid as u64);
    machine
        .set_sink(sink.clone())
        .set_trace_label("par-conf-bsp");
    if phi > 0.0 {
        machine.set_delivery_hook(
            Arc::new(FaultPlan::new(FaultSpec::drop_only(phi), seed)) as Arc<dyn DeliveryHook>
        );
    }
    for s in 0..supersteps {
        machine.superstep(|pid, state, inbox, out| {
            *state = state.wrapping_add(inbox.iter().sum::<u64>());
            let n = (pid * 7 + s * 13) % 5;
            for k in 0..n {
                out.send((pid + k + 1) % p, (*state).wrapping_mul(k as u64 + 1));
            }
            out.charge_work(1 + (pid as u64 % 3));
        });
    }
    format!(
        "{}ledger: {:?}\nstates: {:?}\n",
        jsonl(&sink.take()),
        machine.fault_stats(),
        machine.states()
    )
}

/// A faulty QSM run rendered to bytes: trace JSONL, fault ledger, final
/// states.
fn render_qsm(p: usize, phases: usize, phi: f64, seed: u64) -> String {
    let params = MachineParams::from_gap(p, 4, 8);
    let sink = Arc::new(RecordingSink::new());
    let mut qsm: QsmMachine<i64> = QsmMachine::new(params, 2 * p, |pid| pid as i64);
    qsm.set_sink(sink.clone()).set_trace_label("par-conf-qsm");
    if phi > 0.0 {
        qsm.set_delivery_hook(
            Arc::new(FaultPlan::new(FaultSpec::drop_only(phi), seed)) as Arc<dyn DeliveryHook>
        );
    }
    for ph in 0..phases {
        if ph % 2 == 0 {
            qsm.phase(|pid, state, _res, ctx| {
                ctx.write((pid + ph) % (2 * p), *state + ph as i64);
            });
        } else {
            qsm.phase(|pid, state, res, ctx| {
                *state += res.iter().map(|r| r.value).sum::<i64>();
                ctx.read(pid / 2);
                ctx.read((pid + ph) % (2 * p));
            });
        }
    }
    format!(
        "{}ledger: {:?}\nstates: {:?}\n",
        jsonl(&sink.take()),
        qsm.fault_stats(),
        qsm.states()
    )
}

/// A PRAM run rendered to bytes: trace JSONL, final memory, time/work.
fn render_pram(n: usize) -> String {
    let sink = Arc::new(RecordingSink::new());
    let mut pram = Pram::new(AccessMode::CrcwArbitrary, n);
    pram.set_sink(sink.clone()).set_trace_label("par-conf-pram");
    pram.step(n, |pid, ctx| ctx.write(pid, pid as i64 * 3));
    pram.step(n, |pid, ctx| {
        let v = ctx.read((pid + 1) % n);
        ctx.write(pid, v + 1);
    });
    pram.step(n / 2, |pid, ctx| {
        let a = ctx.read(2 * pid);
        let b = ctx.read(2 * pid + 1);
        ctx.write(pid, a + b);
    });
    format!(
        "{}mem: {:?}\ntime: {} work: {}\n",
        jsonl(&sink.take()),
        pram.mem(),
        pram.time(),
        pram.work()
    )
}

/// An offline schedule audit rendered to bytes: validation verdict, audit
/// trace event, evaluated cost.
fn render_audit(p: usize, hot: u64, seed: u64) -> String {
    let params = MachineParams::from_gap(p, 4, 8);
    let wl = workload::single_hot_sender(p, hot, 4, seed);
    let plan = UnbalancedSend::new(0.3).schedule(&wl, params.m, seed);
    let valid = validate_schedule(&plan, &wl);
    let ev = audit_schedule(&plan, &wl, params, "par-conf-audit");
    let cost = evaluate_schedule(&plan, &wl, params.m, PenaltyFn::Exponential);
    format!("valid: {valid:?}\n{}\ncost: {cost:?}\n", ev.to_json())
}

/// A recovery run under loss rendered to bytes: the full outcome (rounds,
/// residual retransmission schedule sizes, arrival distribution, ledger)
/// plus its trace stream.
fn render_recovery(p: usize, phi: f64, seed: u64, run_seed: u64) -> String {
    let params = MachineParams::from_gap(p, 8, 16);
    let wl = workload::single_hot_sender(p, (p as u64) * 4, 4, 2);
    let scheduler = UnbalancedSend::new(0.3);
    let cfg = RecoveryConfig::default();
    let hook = (phi > 0.0).then(|| {
        Arc::new(FaultPlan::new(FaultSpec::drop_only(phi), seed)) as Arc<dyn DeliveryHook>
    });
    let sink = Arc::new(RecordingSink::new());
    let outcome = run_with_recovery_to(
        sink.clone() as Arc<dyn TraceSink>,
        &wl,
        &scheduler,
        params,
        run_seed,
        hook,
        &cfg,
    );
    format!("{}outcome: {outcome:?}\n", jsonl(&sink.take()))
}

#[test]
fn bsp_trace_ledger_and_states_are_width_independent() {
    assert_width_independent("bsp φ=0.15", || render_bsp(64, 5, 0.15, 42));
    assert_width_independent("bsp φ=0", || render_bsp(64, 5, 0.0, 42));
}

#[test]
fn qsm_trace_ledger_and_states_are_width_independent() {
    assert_width_independent("qsm φ=0.15", || render_qsm(48, 6, 0.15, 9));
    assert_width_independent("qsm φ=0", || render_qsm(48, 6, 0.0, 9));
}

#[test]
fn pram_trace_and_memory_are_width_independent() {
    assert_width_independent("pram", || render_pram(64));
}

#[test]
fn schedule_audit_is_width_independent() {
    assert_width_independent("audit", || render_audit(64, 512, 5));
}

#[test]
fn recovery_under_loss_is_width_independent() {
    assert_width_independent("recovery φ=0.1", || render_recovery(32, 0.1, 7, 11));
}

/// The whole `faults` experiment — whose φ-sweep and erosion sweep run
/// their points through `par_iter` internally — must render the same
/// report (tables *and* replayed trace order) at every width.
#[test]
fn faults_experiment_report_is_width_independent() {
    assert_width_independent("faults experiment", || {
        pbw_bench::experiments::faults::faults_seeded(true, 7)
    });
}

// The fixed tests above pin known-interesting points; the property tests
// below quantify over seeds, machine shapes and drop rates at the same
// widths.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Faulty BSP runs: any (shape, drop rate, seed) triple traces
    /// identically at 1, 2 and 8 threads. `p` must be a multiple of the
    /// gap g = 4 (a `MachineParams` invariant), so the strategy draws p/g.
    #[test]
    fn prop_bsp_runs_are_width_independent(
        p_over_g in 1usize..12,
        supersteps in 1usize..5,
        phi in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        assert_width_independent(
            "prop-bsp",
            || render_bsp(4 * p_over_g, supersteps, phi, seed),
        );
    }

    /// Faulty QSM runs likewise.
    #[test]
    fn prop_qsm_runs_are_width_independent(
        p_over_g in 1usize..10,
        phases in 1usize..6,
        phi in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        assert_width_independent("prop-qsm", || render_qsm(4 * p_over_g, phases, phi, seed));
    }

    /// Satellite guarantee for the recovery protocol: with φ > 0 the
    /// residual retransmission schedule (rounds, resent flits, arrival
    /// distribution — the whole outcome) is identical at any thread count.
    #[test]
    fn prop_recovery_residuals_are_width_independent(
        p_over_g in 1usize..5,
        phi in 0.02f64..0.25,
        fault_seed in any::<u64>(),
        run_seed in 0u64..1000,
    ) {
        assert_width_independent(
            "prop-recovery",
            || render_recovery(8 * p_over_g, phi, fault_seed, run_seed),
        );
    }

    /// Schedule audits over random hot-sender workloads.
    #[test]
    fn prop_schedule_audit_is_width_independent(
        p_over_g in 1usize..16,
        hot in 16u64..1024,
        seed in any::<u64>(),
    ) {
        assert_width_independent("prop-audit", || render_audit(4 * p_over_g, hot, seed));
    }
}
