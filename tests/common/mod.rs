//! Helpers shared across the integration-test binaries.
//!
//! Each test binary compiles this module independently and uses a subset
//! of it, so unused-item lints are silenced for the whole module.
#![allow(dead_code)]

use std::sync::Arc;

use parallel_bandwidth::models::MachineParams;
use parallel_bandwidth::prelude::{FaultPlan, FaultSpec, FaultStats};
use parallel_bandwidth::sim::BspMachine;
use parallel_bandwidth::trace::{RecordingSink, TraceEvent};
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

/// Run `f` inside a pool of exactly `width` threads.
pub fn at_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .expect("pool construction is infallible in the shim")
        .install(f)
}

/// The conformance oracle: `render` must produce byte-identical output at
/// widths 1 (the sequential baseline), 2 and 8.
pub fn assert_width_independent(label: &str, render: impl Fn() -> String) {
    let baseline = at_width(1, &render);
    for width in [2usize, 8] {
        let wide = at_width(width, &render);
        assert_eq!(
            baseline, wide,
            "{label}: output at {width} threads differs from the 1-thread baseline"
        );
    }
}

/// Render a trace stream to one JSON line per event.
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut s = String::new();
    for ev in events {
        s.push_str(&ev.to_json());
        s.push('\n');
    }
    s
}

/// Quickstart-scale machine: p = 512, m = 32 (g = 16), L = 16.
pub fn quickstart_params() -> MachineParams {
    MachineParams::from_bandwidth(512, 32, 16)
}

/// A trace event must account for exactly the messages the engine says it
/// delivered — in its injection histogram and per-processor tallies alike.
pub fn assert_conserves_messages(ev: &TraceEvent) {
    let injected: u64 = ev.profile.injections.iter().sum();
    assert_eq!(
        injected, ev.delivered,
        "superstep {}: histogram says {injected} injections, engine delivered {}",
        ev.superstep, ev.delivered
    );
    let sent: u64 = ev.per_proc_sent.iter().sum();
    let recv: u64 = ev.per_proc_recv.iter().sum();
    assert_eq!(
        sent, ev.delivered,
        "per-proc sends disagree with deliveries"
    );
    assert_eq!(
        recv, ev.delivered,
        "per-proc receives disagree with deliveries"
    );
}

/// Skewed BSP run: a hot sender spraying `hot` messages (pipelined slots)
/// while everyone else sends a few, over several supersteps.
pub fn run_bsp_hot_sender(
    params: MachineParams,
    hot: u64,
    cold: u64,
    supersteps: usize,
    sink: Arc<RecordingSink>,
) -> BspMachine<(), u64> {
    let mut machine: BspMachine<(), u64> = BspMachine::new(params, |_| ());
    machine.set_sink(sink).set_trace_label("conformance-bsp");
    let p = params.p;
    for _ in 0..supersteps {
        machine.superstep(|pid, _s, _in, out| {
            let n = if pid == 0 { hot } else { cold };
            for k in 0..n {
                out.send((pid + 1 + k as usize) % p, k);
            }
            out.charge_work(3 + pid as u64 % 5);
        });
    }
    machine
}

/// Drive a hooked 8-processor machine: every processor sends `fanout`
/// messages in superstep 0, then the machine idles until nothing is in
/// flight. Returns the final fault ledger and the recorded trace.
pub fn run_hooked(plan: FaultPlan, fanout: u64, extra_steps: u64) -> (FaultStats, Vec<TraceEvent>) {
    let params = MachineParams::from_gap(8, 4, 4);
    let sink = Arc::new(RecordingSink::new());
    let mut machine: BspMachine<(), u64> = BspMachine::new(params, |_| ());
    machine.set_sink(sink.clone()).set_trace_label("fault-prop");
    machine.set_delivery_hook(Arc::new(plan));
    let p = params.p;
    machine.superstep(|pid, _s, _in, out| {
        for k in 0..fanout {
            out.send((pid + 1 + k as usize) % p, k);
        }
    });
    for _ in 0..extra_steps {
        machine.superstep(|_pid, _s, _in, _out| {});
    }
    // Drain whatever the plan still holds in flight.
    while machine.faults_in_flight() > 0 {
        machine.superstep(|_pid, _s, _in, _out| {});
    }
    (machine.fault_stats(), sink.take())
}

/// An arbitrary mixed-fate fault specification (all rates bounded away
/// from saturation so runs stay short). Crash-stop outages are part of
/// the mix: every consumer's conservation assertion must use the full
/// ledger law with the `crashed`/`restored` columns.
pub fn spec_strategy() -> impl Strategy<Value = FaultSpec> {
    (
        0.0..0.24f64, // drop
        0.0..0.24f64, // duplicate
        0.0..0.24f64, // delay
        0.0..0.24f64, // displace
        0.0..0.3f64,  // stall
        0.0..0.1f64,  // crash onset
        1..4u32,      // max_delay
        1..8u64,      // max_displacement
    )
        .prop_map(|(dr, du, de, di, st, cr, md, mx)| FaultSpec {
            drop_rate: dr,
            duplicate_rate: du,
            delay_rate: de,
            max_delay: md,
            displace_rate: di,
            max_displacement: mx,
            stall_rate: st,
            crash_rate: cr,
            max_crash_len: 2,
        })
}
