//! Failure-injection integration tests: the engines and validators must
//! reject rule-breaking programs loudly, and degenerate or adversarial
//! configurations must not corrupt results.

use parallel_bandwidth::models::{MachineParams, PenaltyFn};
use parallel_bandwidth::pram::{AccessMode, Pram, PramError};
use parallel_bandwidth::sched::schedulers::{Scheduler, UnbalancedSend};
use parallel_bandwidth::sched::{evaluate_schedule, validate_schedule, workload, Schedule};
use parallel_bandwidth::sim::{BspMachine, QsmMachine, SimError};

#[test]
fn engine_rejects_double_injection() {
    let mp = MachineParams::from_gap(8, 2, 2);
    let mut m: BspMachine<(), u8> = BspMachine::new(mp, |_| ());
    let err = m
        .try_superstep(|pid, _s, _in, out| {
            if pid == 3 {
                out.send_at(0, 1, 9);
                out.send_at(1, 1, 9);
            }
        })
        .unwrap_err();
    assert_eq!(err, SimError::DuplicateSlot { pid: 3, slot: 9 });
    // The machine remains usable after the rejected superstep.
    let report = m.superstep(|_pid, _s, _in, out| out.send(0, 1));
    assert_eq!(report.delivered, 8);
}

#[test]
fn engine_rejects_qsm_read_write_mix() {
    let mp = MachineParams::from_gap(4, 2, 2);
    let mut q: QsmMachine<()> = QsmMachine::new(mp, 8, |_| ());
    let err = q
        .try_phase(|pid, _s, _res, ctx| {
            if pid == 0 {
                ctx.read(3);
            } else {
                ctx.write(3, 1);
            }
        })
        .unwrap_err();
    assert_eq!(err, SimError::ReadWriteConflict { addr: 3 });
}

#[test]
fn pram_erew_violations_are_precise() {
    let mut pram = Pram::new(AccessMode::Erew, 8);
    let err = pram.try_step(5, |_pid, ctx| {
        ctx.read(2);
    });
    assert_eq!(
        err.unwrap_err(),
        PramError::ReadConflict {
            addr: 2,
            contention: 5
        }
    );
    // Same program is legal under CRCW and QRQW.
    let mut crcw = Pram::new(AccessMode::CrcwArbitrary, 8);
    assert!(crcw
        .try_step(5, |_pid, ctx| {
            ctx.read(2);
        })
        .is_ok());
}

#[test]
fn corrupted_schedule_is_rejected_before_costing() {
    let wl = workload::uniform_random(16, 4, 1);
    let mut sched = UnbalancedSend::new(0.2).schedule(&wl, 4, 0);
    // Corrupt: give processor 0 two messages in one slot.
    if sched.starts[0].len() >= 2 {
        let s = sched.starts[0][0];
        sched.starts[0][1] = s;
    }
    assert!(validate_schedule(&sched, &wl).is_err());
}

#[test]
fn truncated_schedule_shape_is_rejected() {
    let wl = workload::uniform_random(16, 4, 1);
    let mut sched = UnbalancedSend::new(0.2).schedule(&wl, 4, 0);
    sched.starts.pop();
    assert!(validate_schedule(&sched, &wl).is_err());
}

#[test]
fn extreme_overload_saturates_instead_of_panicking() {
    // Everything in one slot with m = 1: the exponential charge is e^{n−1},
    // astronomically large but finite (saturating), and ordering survives.
    let p = 64usize;
    let wl = workload::permutation(p, 2);
    let sched = Schedule {
        starts: vec![vec![0]; p],
    };
    let cost = evaluate_schedule(&sched, &wl, 1, PenaltyFn::Exponential);
    assert!(cost.c_m.is_finite());
    assert!(cost.c_m > 1e20);
    let lin = evaluate_schedule(&sched, &wl, 1, PenaltyFn::Linear);
    assert!(lin.c_m < cost.c_m);
    assert_eq!(lin.c_m, p as f64); // n/m with everything in one slot
}

#[test]
fn adversary_noncompliance_is_detected() {
    use parallel_bandwidth::adversary::{AqtParams, ComplianceChecker};
    let params = AqtParams {
        w: 8,
        alpha: 1.0,
        beta: 0.25,
    };
    let mut checker = ComplianceChecker::new(8, params);
    // A rogue stream: source 0 floods.
    for _ in 0..8 {
        checker.record(&[(0, 1), (0, 2)]);
    }
    assert!(!checker.is_compliant());
    assert!(checker.violations().iter().any(|v| v.contains("source 0")));
}

#[test]
fn single_processor_machines_work_everywhere() {
    let mp = MachineParams::from_gap(1, 1, 1);
    let mut m: BspMachine<u64, u64> = BspMachine::new(mp, |_| 0);
    let r = m.superstep(|_pid, s, _in, _out| *s = 7);
    assert_eq!(r.delivered, 0);
    assert_eq!(*m.state(0), 7);
    let mut q: QsmMachine<u64> = QsmMachine::new(mp, 4, |_| 0);
    q.phase(|_pid, _s, _res, ctx| ctx.write(0, 5));
    assert_eq!(q.shared()[0], 5);
}

#[test]
fn workload_with_self_sends_is_legal_and_costed() {
    // Nothing in the model forbids sending to yourself; it still consumes
    // bandwidth and counts in h on both sides.
    let wl = parallel_bandwidth::sched::Workload::from_dests(vec![vec![0, 0, 0], vec![]]);
    let sched = UnbalancedSend::new(0.2).schedule(&wl, 1, 3);
    let cost = evaluate_schedule(&sched, &wl, 1, PenaltyFn::Exponential);
    assert_eq!(cost.h, 3);
    assert_eq!(cost.n, 3);
}

#[test]
fn timeline_flags_overloads_that_penalties_price() {
    use parallel_bandwidth::sched::schedulers::{EagerSend, OfflineOptimal};
    use parallel_bandwidth::sim::timeline;
    let p = 64usize;
    let m = 8usize;
    let wl = workload::uniform_random(p, 16, 2);
    let eager =
        parallel_bandwidth::sched::schedule::to_profile(&EagerSend.schedule(&wl, m, 0), &wl);
    let good =
        parallel_bandwidth::sched::schedule::to_profile(&OfflineOptimal.schedule(&wl, m, 1), &wl);
    let u_eager = timeline::utilization(&eager, m);
    let u_good = timeline::utilization(&good, m);
    assert!(
        u_eager.overload_mass > 0.9,
        "eager mass {}",
        u_eager.overload_mass
    );
    assert_eq!(u_good.overload_mass, 0.0);
    assert!(timeline::render_strip(&eager, m, 40).contains('!'));
    assert!(!timeline::render_strip(&good, m, 40).contains('!'));
    // Unbalanced-Send at tiny ε²m may overload a few slots — the mass must
    // still be a small fraction.
    let us = parallel_bandwidth::sched::schedule::to_profile(
        &UnbalancedSend::new(0.3).schedule(&wl, m, 1),
        &wl,
    );
    assert!(timeline::utilization(&us, m).overload_mass < 0.5);
}
