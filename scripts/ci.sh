#!/usr/bin/env bash
# Local CI gate: everything the workflow runs, runnable offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all -- --check

echo "== build (release) =="
cargo build --workspace --release

# The tier-1 suite runs twice: once with the thread pool forced sequential
# and once forced to 8 workers. Both must pass — the engines' contract is
# that results (traces included) are byte-identical at every width, and
# tests/parallel_conformance.rs asserts exactly that from inside one run.
echo "== tests (PBW_THREADS=1) =="
PBW_THREADS=1 cargo test --workspace -q

echo "== tests (PBW_THREADS=8) =="
PBW_THREADS=8 cargo test --workspace -q

# Dedicated rerun of the stress smoke tier (release, extra-downscaled to
# stay fast) so a scaling regression in the arena/delivery path fails a
# step attributed to the stress tier rather than drowning in the workspace
# suites. The #[ignore]d heavy tier stays opt-in.
echo "== stress smoke (PBW_STRESS_SCALE=32) =="
PBW_STRESS_SCALE=32 cargo test --release -q --test stress

# The large-p paper-claims tier: broadcast and the gvsm-routing breakdown
# at p = 2^18, feasible in CI only because the active-set engine path
# makes nearly-idle machines cost O(active + messages) per superstep.
echo "== paper claims at p = 2^18 =="
cargo test --release -q --test paper_claims large_p -- --ignored

# Shrunk proptest counterexamples must never silently rot: the regressions
# file has to exist with at least one saved case, and the properties suite
# gets a dedicated invocation (proptest auto-replays the sibling file
# before generating novel cases).
echo "== proptest regression replay =="
grep -q '^cc ' tests/properties.proptest-regressions \
  || { echo "tests/properties.proptest-regressions holds no saved cases" >&2; exit 1; }
cargo test --release -q --test properties
echo "ok: $(grep -c '^cc ' tests/properties.proptest-regressions) saved counterexample(s) replayed"

# The bounded model checker: exhaustively verify all five invariant
# families (conservation + ledger reconstruction with the crash/restore
# columns, recovery termination, sparse ≡ dense byte-identity, crash-stop
# checkpoint/rollback recovery, Thm 6.2 cost envelope) over the CI domain
# (p ≤ 3, supersteps ≤ 3, messages ≤ 4) against the real engines.
# --require-exhaustive turns a budget truncation into a failure — the CI
# domain must stay fully enumerable within the budget.
echo "== bounded model checker (pbw-check) =="
PBW_CHECK_BUDGET="${PBW_CHECK_BUDGET:-300000}" \
  cargo run --release -q -p pbw-check -- --require-exhaustive

# Checker self-test, mirroring bench_gate.sh --self-test: compile in a
# deliberate conservation violation and prove the checker catches it. A
# checker that cannot see the planted bug is not checking anything.
echo "== pbw-check self-test (planted violation) =="
cargo run --release -q -p pbw-check --features check-selftest -- --self-test

# The checker's documented exit codes are API: scripts and the workflow
# branch on them, so each distinct code is asserted here against the
# table `--help` prints. (0 = verified and 1 = counterexample are covered
# by the run above and the self-test; here: 2 = usage error, 4 =
# --self-test without the planted-bug feature compiled in.)
echo "== pbw-check exit codes =="
# The self-test run above rebuilt the binary WITH the planted-bug feature;
# put the featureless one back before asserting its exit codes.
cargo build --release -q -p pbw-check
check_bin=./target/release/pbw-check
[ -x "$check_bin" ] || { echo "pbw-check binary missing after build" >&2; exit 1; }
"$check_bin" --help | grep -q "exit codes:" || { echo "--help does not document exit codes" >&2; exit 1; }
rc=0; "$check_bin" --no-such-flag >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "unknown flag exited $rc, want 2" >&2; exit 1; }
rc=0; "$check_bin" --self-test >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 4 ] || { echo "featureless --self-test exited $rc, want 4" >&2; exit 1; }
echo "ok: usage error -> 2, featureless self-test -> 4, both as documented"

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== trace smoke: reproduce --trace =="
trace_out="$(mktemp)"
fault_a="$(mktemp)"
fault_b="$(mktemp)"
fault_w1="$(mktemp)"
fault_w8="$(mktemp)"
sort_a="$(mktemp)"
sort_b="$(mktemp)"
trap 'rm -f "$trace_out" "$fault_a" "$fault_b" "$fault_w1" "$fault_w8" "$sort_a" "$sort_b"' EXIT
cargo run --release -q -p pbw-bench --bin reproduce -- --quick --trace "$trace_out" table1 >/dev/null
[ -s "$trace_out" ] || { echo "trace file is empty" >&2; exit 1; }
echo "ok: $(wc -l < "$trace_out") trace events"

echo "== fault determinism: same seed, bit-identical traces =="
cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$fault_a" faults >/dev/null
cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$fault_b" faults >/dev/null
[ -s "$fault_a" ] || { echo "fault trace is empty" >&2; exit 1; }
diff -q "$fault_a" "$fault_b" || { echo "same-seed fault traces differ" >&2; exit 1; }
echo "ok: $(wc -l < "$fault_a") fault-run trace events, replayed bit-identically"

echo "== sorting determinism: same seed, bit-identical traces =="
# The sample-sort sweep (seeded keysets + seeded oversampling, 28 sweep
# points run in parallel) must replay bit-identically, trace stream
# included — the per-point recording sinks make the JSONL order canonical
# at any thread width.
cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$sort_a" sorting >/dev/null
cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$sort_b" sorting >/dev/null
[ -s "$sort_a" ] || { echo "sorting trace is empty" >&2; exit 1; }
diff -q "$sort_a" "$sort_b" || { echo "same-seed sorting traces differ" >&2; exit 1; }
echo "ok: $(wc -l < "$sort_a") sorting-run trace events, replayed bit-identically"

echo "== cross-thread-count determinism: same seed, widths 1 vs 8 =="
PBW_THREADS=1 cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$fault_w1" faults >/dev/null
PBW_THREADS=8 cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$fault_w8" faults >/dev/null
# Guard against the vacuous pass: if tracing silently broke and both files
# are empty, diff would succeed while proving nothing.
[ -s "$fault_w1" ] || { echo "width-1 fault trace is empty" >&2; exit 1; }
diff -q "$fault_w1" "$fault_w8" || { echo "fault traces differ between 1 and 8 threads" >&2; exit 1; }
echo "ok: fault-run trace is byte-identical at PBW_THREADS=1 and PBW_THREADS=8"

echo "== chaos soak (crashes x fault zoo, seeded, replay-diffed) =="
scripts/chaos_soak.sh

echo "== benchmark regression gate =="
scripts/bench_gate.sh

# ThreadSanitizer needs -Zbuild-std (so std itself is instrumented), which
# needs the rust-src component — unavailable offline. Run the race check
# when the toolchain allows; the workflow's tsan job always runs it.
echo "== thread sanitizer (optional) =="
if rustup component list --toolchain nightly 2>/dev/null | grep -q "rust-src (installed)"; then
  RUSTFLAGS="-Zsanitizer=thread" TSAN_OPTIONS="suppressions=/dev/null" \
    cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
    -p rayon -q
  echo "ok: rayon shim pool is race-free under TSan"
else
  echo "skipped: nightly rust-src not installed (offline); the ci.yml tsan job covers this"
fi

echo "CI green"
