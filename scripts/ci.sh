#!/usr/bin/env bash
# Local CI gate: everything the workflow runs, runnable offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace -q

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== trace smoke: reproduce --trace =="
trace_out="$(mktemp)"
trap 'rm -f "$trace_out"' EXIT
cargo run --release -q -p pbw-bench --bin reproduce -- --quick --trace "$trace_out" table1 >/dev/null
[ -s "$trace_out" ] || { echo "trace file is empty" >&2; exit 1; }
echo "ok: $(wc -l < "$trace_out") trace events"

echo "CI green"
