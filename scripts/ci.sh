#!/usr/bin/env bash
# Local CI gate: everything the workflow runs, runnable offline.
#
# The gate is split into named stages, each individually timed and run to
# completion even when an earlier stage fails (so one broken stage reports
# every other stage's status too — the summary table at the end is the
# whole picture). Set PBW_CI_FAIL_FAST=1 to stop at the first failure
# instead. Each stage runs in a fresh `bash -euo pipefail` process (the
# script re-executes itself with `--stage <name>`), so commands inside a
# stage keep ordinary errexit semantics.
#
# Usage:
#   scripts/ci.sh                 # run every stage, summary table at the end
#   scripts/ci.sh --stage build   # run one stage by name (the workflow's
#                                 # per-job entry point)
#   scripts/ci.sh --list          # print the stage names
#   PBW_CI_FAIL_FAST=1 scripts/ci.sh   # stop at the first failing stage
set -euo pipefail
cd "$(dirname "$0")/.."

# ---------------------------------------------------------------------------
# Stage bodies. Each is a function named stage_<name> with <name> listed in
# STAGES below; .github/workflows/ci.yml mirrors this split as one job (or
# job step) per stage.
# ---------------------------------------------------------------------------

STAGES=(
  fmt
  build
  test-w1
  test-w4
  test-w8
  stress
  paper-claims
  proptest-replay
  model-check
  clippy
  trace-smoke
  fault-determinism
  sorting-determinism
  cross-width-determinism
  chaos-soak
  density-crossover
  bench-gate
  parallel-gate
  tsan
)

stage_fmt() {
  cargo fmt --all -- --check
}

stage_build() {
  cargo build --workspace --release
}

# The tier-1 suite runs three times: the thread pool forced sequential,
# forced to 4 workers, and forced to 8. All must pass — the engines'
# contract is that results (traces included) are byte-identical at every
# width, and tests/parallel_conformance.rs asserts exactly that from
# inside one run.
stage_test-w1() {
  PBW_THREADS=1 cargo test --workspace -q
}

stage_test-w4() {
  PBW_THREADS=4 cargo test --workspace -q
}

stage_test-w8() {
  PBW_THREADS=8 cargo test --workspace -q
}

# Dedicated rerun of the stress smoke tier (release, extra-downscaled to
# stay fast) so a scaling regression in the arena/delivery path fails a
# stage attributed to the stress tier rather than drowning in the
# workspace suites. The #[ignore]d heavy tier stays opt-in.
stage_stress() {
  PBW_STRESS_SCALE=32 cargo test --release -q --test stress
}

# The large-p paper-claims tier: broadcast and the gvsm-routing breakdown
# at p = 2^18, feasible in CI only because the active-set engine path
# makes nearly-idle machines cost O(active + messages) per superstep.
stage_paper-claims() {
  cargo test --release -q --test paper_claims large_p -- --ignored
}

# Shrunk proptest counterexamples must never silently rot: the regressions
# file has to exist with at least one saved case, and the properties suite
# gets a dedicated invocation (proptest auto-replays the sibling file
# before generating novel cases).
stage_proptest-replay() {
  grep -q '^cc ' tests/properties.proptest-regressions \
    || { echo "tests/properties.proptest-regressions holds no saved cases" >&2; exit 1; }
  cargo test --release -q --test properties
  echo "ok: $(grep -c '^cc ' tests/properties.proptest-regressions) saved counterexample(s) replayed"
}

# The bounded model checker: exhaustively verify all five invariant
# families (conservation + ledger reconstruction with the crash/restore
# columns, recovery termination, sparse ≡ dense byte-identity, crash-stop
# checkpoint/rollback recovery, Thm 6.2 cost envelope) over the CI domain
# (p ≤ 3, supersteps ≤ 3, messages ≤ 4) against the real engines.
# --require-exhaustive turns a budget truncation into a failure. Then the
# self-test compiles in a deliberate conservation violation and proves the
# checker catches it, and the documented exit-code table is asserted as
# API (scripts and the workflow branch on those codes).
stage_model-check() {
  PBW_CHECK_BUDGET="${PBW_CHECK_BUDGET:-300000}" \
    cargo run --release -q -p pbw-check -- --require-exhaustive

  echo "== pbw-check self-test (planted violation) =="
  cargo run --release -q -p pbw-check --features check-selftest -- --self-test

  echo "== pbw-check exit codes =="
  # The self-test run above rebuilt the binary WITH the planted-bug
  # feature; put the featureless one back before asserting its exit codes.
  cargo build --release -q -p pbw-check
  local check_bin=./target/release/pbw-check
  [ -x "$check_bin" ] || { echo "pbw-check binary missing after build" >&2; exit 1; }
  "$check_bin" --help | grep -q "exit codes:" || { echo "--help does not document exit codes" >&2; exit 1; }
  local rc=0
  "$check_bin" --no-such-flag >/dev/null 2>&1 || rc=$?
  [ "$rc" -eq 2 ] || { echo "unknown flag exited $rc, want 2" >&2; exit 1; }
  rc=0
  "$check_bin" --self-test >/dev/null 2>&1 || rc=$?
  [ "$rc" -eq 4 ] || { echo "featureless --self-test exited $rc, want 4" >&2; exit 1; }
  echo "ok: usage error -> 2, featureless self-test -> 4, both as documented"
}

stage_clippy() {
  cargo clippy --workspace --all-targets -- -D warnings
}

stage_trace-smoke() {
  local trace_out
  trace_out="$(mktemp)"
  trap "rm -f '$trace_out'" EXIT
  cargo run --release -q -p pbw-bench --bin reproduce -- --quick --trace "$trace_out" table1 >/dev/null
  [ -s "$trace_out" ] || { echo "trace file is empty" >&2; exit 1; }
  echo "ok: $(wc -l < "$trace_out") trace events"
}

stage_fault-determinism() {
  local fault_a fault_b
  fault_a="$(mktemp)"
  fault_b="$(mktemp)"
  trap "rm -f '$fault_a' '$fault_b'" EXIT
  cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$fault_a" faults >/dev/null
  cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$fault_b" faults >/dev/null
  [ -s "$fault_a" ] || { echo "fault trace is empty" >&2; exit 1; }
  diff -q "$fault_a" "$fault_b" || { echo "same-seed fault traces differ" >&2; exit 1; }
  echo "ok: $(wc -l < "$fault_a") fault-run trace events, replayed bit-identically"
}

# The sample-sort sweep (seeded keysets + seeded oversampling, 28 sweep
# points run in parallel) must replay bit-identically, trace stream
# included — the per-point recording sinks make the JSONL order canonical
# at any thread width.
stage_sorting-determinism() {
  local sort_a sort_b
  sort_a="$(mktemp)"
  sort_b="$(mktemp)"
  trap "rm -f '$sort_a' '$sort_b'" EXIT
  cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$sort_a" sorting >/dev/null
  cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$sort_b" sorting >/dev/null
  [ -s "$sort_a" ] || { echo "sorting trace is empty" >&2; exit 1; }
  diff -q "$sort_a" "$sort_b" || { echo "same-seed sorting traces differ" >&2; exit 1; }
  echo "ok: $(wc -l < "$sort_a") sorting-run trace events, replayed bit-identically"
}

# Three-way width matrix: the same seeded fault run at pool widths 1, 4,
# and 8 must produce byte-identical traces. Width 4 is the interesting
# middle — it exercises chunk boundaries neither the degenerate width-1
# pool nor the wide-8 pool hits.
stage_cross-width-determinism() {
  local fault_w1 fault_w4 fault_w8
  fault_w1="$(mktemp)"
  fault_w4="$(mktemp)"
  fault_w8="$(mktemp)"
  trap "rm -f '$fault_w1' '$fault_w4' '$fault_w8'" EXIT
  PBW_THREADS=1 cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$fault_w1" faults >/dev/null
  PBW_THREADS=4 cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$fault_w4" faults >/dev/null
  PBW_THREADS=8 cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$fault_w8" faults >/dev/null
  # Guard against the vacuous pass: if tracing silently broke and the files
  # are empty, diff would succeed while proving nothing.
  [ -s "$fault_w1" ] || { echo "width-1 fault trace is empty" >&2; exit 1; }
  diff -q "$fault_w1" "$fault_w4" || { echo "fault traces differ between 1 and 4 threads" >&2; exit 1; }
  diff -q "$fault_w1" "$fault_w8" || { echo "fault traces differ between 1 and 8 threads" >&2; exit 1; }
  echo "ok: fault-run trace is byte-identical at PBW_THREADS=1, 4, and 8"
}

# Seeded chaos soak: crashes x fault zoo, seeded, replay-diffed.
stage_chaos-soak() {
  scripts/chaos_soak.sh
}

# Density-crossover conformance (PR 10). Two claims underwrite the measured
# crossover's freedom to differ between machines:
#   (a) calibration is deterministic — `factor_from_probe` is a pure
#       function of its probe readings, the probed factor is cached and
#       clamped in-band (the pbw-sim density unit tests pin all of it);
#   (b) the crossover only ever changes wall-clock — the same seeded run
#       with every branch forced sparse (PBW_DENSITY_FACTOR=1), forced
#       dense (a huge factor), and left to the calibrated probe must emit
#       byte-identical traces, at pool widths 1, 4 and 8.
# Scenarios: `broadcast-lb` drives the broadcast-tree crossovers, `faults`
# the recovery-driver ones. Empty traces would make every diff vacuous, so
# each reference is non-empty guarded.
stage_density-crossover() {
  echo "== density-crossover: calibration determinism =="
  cargo test --release -q -p pbw-sim density

  echo "== density-crossover: forced-sparse / forced-dense / probed trace diff =="
  local ref out scen w f label
  ref="$(mktemp)"
  out="$(mktemp)"
  trap "rm -f '$ref' '$out'" EXIT
  for scen in broadcast-lb faults; do
    PBW_THREADS=1 PBW_DENSITY_FACTOR=1 \
      cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$ref" "$scen" >/dev/null
    [ -s "$ref" ] || { echo "density-crossover: $scen reference trace is empty" >&2; exit 1; }
    for w in 1 4 8; do
      # PBW_DENSITY_FACTOR="" parses as unset: the calibrated probe decides.
      for f in 1 1000000 ""; do
        if [ "$w" = 1 ] && [ "$f" = 1 ]; then continue; fi # the reference itself
        label="${f:-probed}"
        PBW_THREADS="$w" PBW_DENSITY_FACTOR="$f" \
          cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$out" "$scen" >/dev/null
        diff -q "$ref" "$out" >/dev/null \
          || { echo "density-crossover: $scen trace differs at width=$w factor=$label" >&2; exit 1; }
      done
    done
    echo "ok: $scen — $(wc -l < "$ref") trace events, byte-identical across widths 1/4/8 x {sparse, dense, probed}"
  done
}

stage_bench-gate() {
  scripts/bench_gate.sh
}

# Core-aware parallel speedup gate: >= 2x at 4 threads on multi-core
# hosts; overhead ceiling + cross-width determinism on 1-core containers.
stage_parallel-gate() {
  scripts/bench_gate.sh --parallel
}

# ThreadSanitizer needs -Zbuild-std (so std itself is instrumented), which
# needs the rust-src component — unavailable offline. Run the race check
# when the toolchain allows; the workflow's tsan job always runs it.
stage_tsan() {
  if rustup component list --toolchain nightly 2>/dev/null | grep -q "rust-src (installed)"; then
    (cd crates/shims/rayon && RUSTFLAGS="-Zsanitizer=thread" TSAN_OPTIONS="suppressions=/dev/null" \
      cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu -q)
    echo "ok: rayon shim pool is race-free under TSan"
  else
    echo "skipped: nightly rust-src not installed (offline); the ci.yml tsan job covers this"
  fi
}

# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

case "${1:-}" in
  --list)
    printf '%s\n' "${STAGES[@]}"
    exit 0
    ;;
  --stage)
    [ $# -eq 2 ] || { echo "usage: $0 --stage <name>" >&2; exit 2; }
    declare -F "stage_$2" >/dev/null || { echo "ci.sh: unknown stage '$2' (see --list)" >&2; exit 2; }
    "stage_$2"
    exit 0
    ;;
  "") ;;
  *)
    echo "usage: $0 [--list | --stage <name>]" >&2
    exit 2
    ;;
esac

fail_fast="${PBW_CI_FAIL_FAST:-0}"
declare -a names statuses times
failures=0

print_summary() {
  echo ""
  echo "== stage summary =="
  printf '%-26s %-8s %8s\n' "stage" "status" "seconds"
  printf '%-26s %-8s %8s\n' "-----" "------" "-------"
  local i
  for i in "${!names[@]}"; do
    printf '%-26s %-8s %8s\n' "${names[$i]}" "${statuses[$i]}" "${times[$i]}"
  done
  echo ""
  if [ "$failures" -gt 0 ]; then
    echo "CI red: $failures stage(s) failed"
  else
    echo "CI green: all ${#names[@]} stages passed"
  fi
}

for s in "${STAGES[@]}"; do
  echo ""
  echo "==== stage: $s ===="
  t0=$(date +%s)
  rc=0
  "$0" --stage "$s" || rc=$?
  t1=$(date +%s)
  names+=("$s")
  times+=("$((t1 - t0))")
  if [ "$rc" -eq 0 ]; then
    statuses+=("pass")
  else
    statuses+=("FAIL:$rc")
    failures=$((failures + 1))
    if [ "$fail_fast" = "1" ]; then
      echo "ci.sh: stage '$s' failed (rc=$rc) and PBW_CI_FAIL_FAST=1; stopping" >&2
      break
    fi
  fi
done

print_summary
[ "$failures" -eq 0 ]
