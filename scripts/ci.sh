#!/usr/bin/env bash
# Local CI gate: everything the workflow runs, runnable offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace -q

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== trace smoke: reproduce --trace =="
trace_out="$(mktemp)"
fault_a="$(mktemp)"
fault_b="$(mktemp)"
trap 'rm -f "$trace_out" "$fault_a" "$fault_b"' EXIT
cargo run --release -q -p pbw-bench --bin reproduce -- --quick --trace "$trace_out" table1 >/dev/null
[ -s "$trace_out" ] || { echo "trace file is empty" >&2; exit 1; }
echo "ok: $(wc -l < "$trace_out") trace events"

echo "== fault determinism: same seed, bit-identical traces =="
cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$fault_a" faults >/dev/null
cargo run --release -q -p pbw-bench --bin reproduce -- --quick --seed 7 --trace "$fault_b" faults >/dev/null
[ -s "$fault_a" ] || { echo "fault trace is empty" >&2; exit 1; }
diff -q "$fault_a" "$fault_b" || { echo "same-seed fault traces differ" >&2; exit 1; }
echo "ok: $(wc -l < "$fault_a") fault-run trace events, replayed bit-identically"

echo "CI green"
