#!/usr/bin/env bash
# Seeded chaos soak: crash-stop outages mixed with the whole fault zoo
# (drops, duplicates, delays, displacements, stalls), driven through the
# checkpointed recovery path over a fixed seed matrix — and every run
# repeated, diffing the JSONL trace streams byte-for-byte. Chaos that
# cannot be replayed cannot be debugged, so determinism is the gate.
#
#   scripts/chaos_soak.sh           # heavy soak tier + seed-matrix diffs
#   scripts/chaos_soak.sh --smoke   # smoke tier only (what CI's test job runs)
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS=(3 5 9 11)

smoke_only=false
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke_only=true ;;
    *) echo "usage: scripts/chaos_soak.sh [--smoke]" >&2; exit 2 ;;
  esac
done

echo "== chaos soak: smoke tier (tests/chaos_soak.rs) =="
cargo test --release -q --test chaos_soak

if ! $smoke_only; then
  echo "== chaos soak: heavy tier (8x seed matrix, 8-wide pool) =="
  cargo test --release -q --test chaos_soak -- --ignored
fi

echo "== chaos soak: reproduce crashes, seed matrix, repeated-run trace diffs =="
cargo build --release -q -p pbw-bench --bin reproduce

a="$(mktemp)"; b="$(mktemp)"; w1="$(mktemp)"; w8="$(mktemp)"
trap 'rm -f "$a" "$b" "$w1" "$w8"' EXIT

for seed in "${SEEDS[@]}"; do
  ./target/release/reproduce --quick --seed "$seed" --trace "$a" crashes >/dev/null
  ./target/release/reproduce --quick --seed "$seed" --trace "$b" crashes >/dev/null
  # An empty pair of traces would diff clean while proving nothing.
  [ -s "$a" ] || { echo "seed $seed: crash-run trace is empty" >&2; exit 1; }
  diff -q "$a" "$b" >/dev/null \
    || { echo "seed $seed: same-seed crash traces differ" >&2; exit 1; }

  PBW_THREADS=1 ./target/release/reproduce --quick --seed "$seed" --trace "$w1" crashes >/dev/null
  PBW_THREADS=8 ./target/release/reproduce --quick --seed "$seed" --trace "$w8" crashes >/dev/null
  [ -s "$w1" ] || { echo "seed $seed: width-1 crash trace is empty" >&2; exit 1; }
  diff -q "$w1" "$w8" >/dev/null \
    || { echo "seed $seed: crash traces differ between 1 and 8 threads" >&2; exit 1; }

  echo "ok: seed $seed — $(wc -l < "$a") trace events, bit-identical across reruns and pool widths"
done

echo "chaos soak green"
