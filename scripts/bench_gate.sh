#!/usr/bin/env bash
# Benchmark-regression gate for the superstep hot path.
#
# Runs the `engine_hotpath` and `engine_scaling` Criterion benches (quick:
# 15-30 samples per scenario), extracts each scenario's [min median max]
# timing triple, and fails if any scenario's MINIMUM is more than
# THRESHOLD_PCT slower than the checked-in baseline in BENCH_engine.json.
#
# Why gate on the minimum, not the median: on the shared 1-core CI
# container, scheduler preemption inflates individual timed batches so
# often that the median of 30 batches swings 30-100% run-to-run (measured
# empirically — see DESIGN.md). The *minimum* batch time is the one
# statistic preemption cannot inflate: it tracks how fast the code can go,
# and it jitters only ~5-10% between runs. A real regression (e.g.
# reintroducing a per-message allocation on the delivery path) slows every
# batch, minimum included — so gating on the minimum loses no sensitivity,
# only noise. Medians are still recorded in the baseline (median_ns /
# seed_median_ns) as the before/after improvement history.
#
# Residual noise margin: even minimums occasionally catch a busy run
# (observed up to ~+50% on one scenario in one run out of six). The 25%
# threshold sits above the quiet-run jitter, and the gate additionally
# retries the whole bench up to BENCH_GATE_RUNS times (default 3), passing
# if any run is clean: a real regression fails every attempt, transient
# load does not.
#
# The --parallel mode is the core-aware speedup gate: it re-runs the
# parallel_speedup bench (crates/bench/benches/parallel.rs: the same
# workload pinned to 1-, 4-, and 8-thread pools) and branches on how many
# cores this host actually has:
#
#   nproc >= 4  the work-stealing pool has real cores to recruit, so
#               parallelism must WIN: median speedup threads_1/threads_4
#               must be >= SPEEDUP_FLOOR (2.0x) on both scenarios.
#   nproc < 4   speedup is physically impossible, so the gate degrades to
#               the only thing a narrow box can prove: a wide pool must be
#               nearly free. threads_8 median <= OVERHEAD_CEIL (1.25x) of
#               threads_1 — the autotuner's sequential cutoff is the
#               mechanism — and the cross-width determinism suite
#               (tests/parallel_conformance.rs) must pass.
#
# Both branches sanity-check the committed BENCH_parallel.json: it must
# record host.nproc so readers know which branch produced its numbers.
#
# Usage:
#   scripts/bench_gate.sh                    # gate against BENCH_engine.json
#   scripts/bench_gate.sh --refresh-baseline # rewrite median_ns from this run
#                                            # (keeps seed_median_ns history)
#   scripts/bench_gate.sh --self-test        # prove the gate trips on a
#                                            # synthetic +50% slowdown
#   scripts/bench_gate.sh --parallel         # core-aware speedup/overhead gate
#   scripts/bench_gate.sh --refresh-parallel # rewrite BENCH_parallel.json
#                                            # from this host's run
#   BENCH_GATE_RUNS=1 scripts/bench_gate.sh  # disable the retry loop
#
# Baselines are recorded on the 1-core CI container with PBW_THREADS=1;
# refresh the baseline from the same environment the gate runs in, never
# from a fast developer machine.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="BENCH_engine.json"
PARALLEL_BASELINE="BENCH_parallel.json"
THRESHOLD_PCT=25
SPEEDUP_FLOOR="2.0"
OVERHEAD_CEIL="1.25"
RUNS="${BENCH_GATE_RUNS:-3}"

refresh=0
selftest=0
parallel=0
refresh_parallel=0
for arg in "$@"; do
  case "$arg" in
    --refresh-baseline) refresh=1 ;;
    --self-test) selftest=1 ;;
    --parallel) parallel=1 ;;
    --refresh-parallel) refresh_parallel=1 ;;
    *)
      echo "usage: $0 [--refresh-baseline] [--self-test] [--parallel] [--refresh-parallel]" >&2
      exit 2
      ;;
  esac
done

command -v jq >/dev/null || {
  echo "bench_gate: jq is required" >&2
  exit 1
}

# ---------------------------------------------------------------------------
# Core-aware parallel speedup gate (--parallel / --refresh-parallel)
# ---------------------------------------------------------------------------

# Runs the parallel_speedup bench once and fills $par_measured with
# "<scenario> <width> <median_ns>" triples parsed from lines like
#   parallel_speedup/ring_superstep_p1024/threads_4  time: [171 µs 173 µs 181 µs]
par_measured=""
run_parallel_bench() {
  echo "== bench_gate: running parallel_speedup (pool widths 1/4/8, nproc=$(nproc)) =="
  local out
  out="$(cargo bench -q -p pbw-bench --bench parallel 2>&1)" || {
    printf '%s\n' "$out" >&2
    exit 1
  }
  printf '%s\n' "$out"
  par_measured="$(printf '%s\n' "$out" | awk '
    function factor(unit) {
      if (unit == "ns") return 1
      if (unit == "µs") return 1000
      if (unit == "ms") return 1000000
      if (unit == "s") return 1000000000
      return 0
    }
    /^parallel_speedup\// && / time: \[/ {
      n = split($1, part, "/")
      if (n != 3 || part[3] !~ /^threads_[0-9]+$/) next
      width = substr(part[3], 9)
      med = $5
      fmed = factor($6)
      if (fmed == 0) next
      printf "%s %d %.1f\n", part[2], width, med * fmed
    }
  ')"
  [ -n "$par_measured" ] || {
    echo "bench_gate: no parallel_speedup 'time: [..]' lines in bench output" >&2
    exit 1
  }
}

# check_parallel <cores>: on a wide host every scenario's threads_1/threads_4
# median ratio must clear SPEEDUP_FLOOR; on a narrow host threads_8 must stay
# within OVERHEAD_CEIL of threads_1 (a wide pool may not tax a serial box).
check_parallel() {
  awk -v cores="$1" -v floor="$SPEEDUP_FLOOR" -v ceil="$OVERHEAD_CEIL" '
    { med[$1 "," $2] = $3; if (!seen[$1]++) order[++n] = $1 }
    END {
      bad = 0
      for (i = 1; i <= n; i++) {
        s = order[i]
        if (!((s ",1") in med) || !((s ",4") in med) || !((s ",8") in med)) {
          printf "bench_gate: FAIL %s: missing a pool width (need 1, 4, 8)\n", s
          bad = 1
          continue
        }
        if (cores >= 4) {
          speedup = med[s ",1"] / med[s ",4"]
          if (speedup < floor) {
            printf "bench_gate: FAIL %s: %.2fx speedup at 4 threads < %.1fx floor (nproc=%d)\n",
              s, speedup, floor, cores
            bad = 1
          } else {
            printf "bench_gate: ok   %s: %.2fx speedup at 4 threads (floor %.1fx, nproc=%d)\n",
              s, speedup, floor, cores
          }
        } else {
          overhead = med[s ",8"] / med[s ",1"]
          if (overhead > ceil) {
            printf "bench_gate: FAIL %s: threads_8 is %.2fx threads_1 > %.2fx ceiling (nproc=%d)\n",
              s, overhead, ceil, cores
            bad = 1
          } else {
            printf "bench_gate: ok   %s: threads_8 is %.2fx threads_1 (ceiling %.2fx, nproc=%d)\n",
              s, overhead, ceil, cores
          }
        }
      }
      if (n == 0) { print "bench_gate: FAIL no parallel scenarios parsed"; bad = 1 }
      exit bad
    }
  ' <(printf '%s\n' "$par_measured")
}

if [ "$refresh_parallel" -eq 1 ]; then
  run_parallel_bench
  tmp="$(mktemp)"
  jq -n '{
    benchmark: "parallel_speedup (crates/bench/benches/parallel.rs)",
    hardware_note: "Speedup is bounded by physical cores: on a 1-core container a wide pool can only add overhead, so the honest numbers there are <= 1x and the gate degrades to the 1.25x overhead ceiling. Re-run scripts/bench_gate.sh --refresh-parallel on a multi-core host for real speedups; host.nproc below records which kind of host produced these numbers.",
    gate: "scripts/bench_gate.sh --parallel: speedup_4_over_1 >= 2.0 on every scenario when nproc >= 4; threads_8 within 1.25x of threads_1 (plus the cross-width determinism suite) when nproc < 4",
    host: { nproc: 0, os: "linux" },
    units: "median nanoseconds per iteration (middle value of [min median max])",
    results: {}
  }' > "$tmp"
  while read -r scenario width med; do
    jq --arg s "$scenario" --arg k "threads_${width}_ns" --argjson v "$med" \
      '.results[$s][$k] = $v' "$tmp" > "$tmp.2" && mv "$tmp.2" "$tmp"
  done <<< "$par_measured"
  jq --argjson n "$(nproc)" '
    .host.nproc = $n
    | .results |= with_entries(.value |= (
        . + { speedup_4_over_1: ((.threads_1_ns / .threads_4_ns * 100 | round) / 100),
              speedup_8_over_1: ((.threads_1_ns / .threads_8_ns * 100 | round) / 100) }
      ))
  ' "$tmp" > "$tmp.2" && mv "$tmp.2" "$tmp"
  mv "$tmp" "$PARALLEL_BASELINE"
  echo "bench_gate: parallel baseline refreshed into $PARALLEL_BASELINE (nproc=$(nproc))"
  exit 0
fi

if [ "$parallel" -eq 1 ]; then
  # The committed record must say which kind of host produced it — a reader
  # (and the gate itself) interprets 0.9x very differently at nproc=1 vs 8.
  jq -e '.host.nproc | numbers' "$PARALLEL_BASELINE" >/dev/null 2>&1 || {
    echo "bench_gate: $PARALLEL_BASELINE missing host.nproc; run $0 --refresh-parallel" >&2
    exit 1
  }
  cores="$(nproc)"
  ok=0
  for attempt in $(seq 1 "$RUNS"); do
    run_parallel_bench
    if check_parallel "$cores"; then
      ok=1
      break
    fi
    if [ "$attempt" -lt "$RUNS" ]; then
      echo "bench_gate: parallel attempt $attempt/$RUNS missed; retrying (transient load?)"
    fi
  done
  [ "$ok" -eq 1 ] || exit 1
  if [ "$cores" -lt 4 ]; then
    # Narrow host: speedup floors are unprovable here, so the determinism
    # matrix is the rest of the degraded contract — byte-identical results
    # at every pool width is what makes multi-core wins safe to claim.
    echo "== bench_gate: nproc=$cores < 4, running cross-width determinism suite =="
    for w in 1 4 8; do
      PBW_THREADS="$w" cargo test --release -q --test parallel_conformance
    done
    echo "bench_gate: parallel gate (degraded, nproc=$cores): overhead ceiling + determinism suite passed"
  else
    echo "bench_gate: parallel gate (nproc=$cores): all scenarios >= ${SPEEDUP_FLOOR}x at 4 threads"
  fi
  exit 0
fi

# The benches the gate pins: the dense superstep hot path and the
# active-set scaling sweep (PR 5).
BENCHES=(engine_hotpath engine_scaling)

# Runs the gated benches once and fills $measured with
# "<name> <min_ns> <median_ns>" triples. The Criterion shim prints one
# line per scenario:
#   engine_hotpath/bsp_ring/p1024  time: [27.9 µs 28.9 µs 32.7 µs]
measured=""
run_bench() {
  echo "== bench_gate: running ${BENCHES[*]} (PBW_THREADS=${PBW_THREADS:-1}) =="
  local out="" bench one
  for bench in "${BENCHES[@]}"; do
    one="$(PBW_THREADS="${PBW_THREADS:-1}" cargo bench -q -p pbw-bench --bench "$bench" 2>&1)" || {
      printf '%s\n' "$one" >&2
      exit 1
    }
    out+="$one"$'\n'
  done
  printf '%s\n' "$out"
  measured="$(printf '%s\n' "$out" | awk '
    function factor(unit) {
      if (unit == "ns") return 1
      if (unit == "µs") return 1000
      if (unit == "ms") return 1000000
      if (unit == "s") return 1000000000
      return 0
    }
    / time: \[/ {
      name = $1
      min = substr($3, 2)
      fmin = factor($4)
      med = $5
      fmed = factor($6)
      if (fmin == 0 || fmed == 0) next
      printf "%s %.1f %.1f\n", name, min * fmin, med * fmed
    }
  ')"
  [ -n "$measured" ] || {
    echo "bench_gate: no 'time: [..]' lines in bench output" >&2
    exit 1
  }
}

if [ "$refresh" -eq 1 ]; then
  run_bench
  tmp="$(mktemp)"
  if [ -s "$BASELINE" ]; then
    cp "$BASELINE" "$tmp"
  else
    cat > "$tmp" << 'EOF'
{
  "benchmark": "engine_hotpath + engine_scaling (crates/bench/benches/)",
  "hardware_note": "Recorded on the 1-core CI container (nproc = 1) with PBW_THREADS=1. Refresh only from the environment the gate runs in.",
  "host": { "nproc": 1, "os": "linux" },
  "units": "nanoseconds per iteration; min_ns/median_ns are the first/middle values of the shim's [min median max] triple",
  "gate": "scripts/bench_gate.sh fails if any scenario's minimum regresses by more than 25% vs min_ns (the median is too preemption-noisy on the shared 1-core container); median_ns and seed_median_ns keep the before/after improvement history",
  "results": {}
}
EOF
  fi
  while read -r name min med; do
    jq --arg k "$name" --argjson mn "$min" --argjson md "$med" \
      '.results[$k] = { min_ns: $mn, median_ns: $md, seed_median_ns: (.results[$k].seed_median_ns // $md) }' \
      "$tmp" > "$tmp.2" && mv "$tmp.2" "$tmp"
  done <<< "$measured"
  jq --argjson n "$(nproc)" '.host.nproc = $n' "$tmp" > "$tmp.2" && mv "$tmp.2" "$tmp"
  mv "$tmp" "$BASELINE"
  echo "bench_gate: baseline refreshed into $BASELINE"
  exit 0
fi

[ -s "$BASELINE" ] || {
  echo "bench_gate: $BASELINE missing or empty; run $0 --refresh-baseline" >&2
  exit 1
}
baseline_pairs="$(jq -r '.results | to_entries[] | "\(.key) \(.value.min_ns)"' "$BASELINE")"
[ -n "$baseline_pairs" ] || {
  echo "bench_gate: no baselines in $BASELINE; run $0 --refresh-baseline" >&2
  exit 1
}

# check <scale>: compare measured minimums (scaled, for the self-test)
# against the baseline min_ns. Exits nonzero on any regression or
# coverage gap.
check() {
  awk -v scale="$1" -v thr="$THRESHOLD_PCT" '
    NR == FNR { base[$1] = $2; next }
    { meas[$1] = $2 * scale }
    END {
      bad = 0
      for (name in base) {
        if (!(name in meas)) {
          printf "bench_gate: FAIL %s: in baseline but not in bench output\n", name
          bad = 1
          continue
        }
        allowed = base[name] * (1 + thr / 100)
        if (meas[name] > allowed) {
          printf "bench_gate: FAIL %s: %.1f ns vs baseline %.1f ns (+%.1f%% > +%d%%)\n",
            name, meas[name], base[name], (meas[name] / base[name] - 1) * 100, thr
          bad = 1
        } else {
          printf "bench_gate: ok   %s: %.1f ns vs baseline %.1f ns (%+.1f%%)\n",
            name, meas[name], base[name], (meas[name] / base[name] - 1) * 100
        }
      }
      for (name in meas) {
        if (!(name in base)) {
          printf "bench_gate: FAIL %s: no baseline (run --refresh-baseline)\n", name
          bad = 1
        }
      }
      exit bad
    }
  ' <(printf '%s\n' "$baseline_pairs") <(printf '%s\n' "$measured")
}

# Run the bench up to $RUNS times; pass as soon as one run is clean.
# Transient container load inflates whole runs, so a retry outlives it;
# a genuine regression fails every attempt.
gate_with_retries() {
  local attempt
  for attempt in $(seq 1 "$RUNS"); do
    run_bench
    if check 1.0; then
      return 0
    fi
    if [ "$attempt" -lt "$RUNS" ]; then
      echo "bench_gate: attempt $attempt/$RUNS regressed; retrying (transient load?)"
    fi
  done
  return 1
}

if [ "$selftest" -eq 1 ]; then
  echo "== bench_gate --self-test: shipped code must pass =="
  gate_with_retries || {
    echo "bench_gate self-test: shipped code failed the gate" >&2
    exit 1
  }
  echo "== bench_gate --self-test: a synthetic +50% slowdown must fail =="
  if check 1.5; then
    echo "bench_gate self-test: synthetic slowdown was NOT caught" >&2
    exit 1
  fi
  echo "bench_gate self-test: gate passes shipped code and catches a synthetic +50% slowdown"
  exit 0
fi

gate_with_retries || exit 1
echo "bench_gate: all scenario minimums within +${THRESHOLD_PCT}% of $BASELINE"
