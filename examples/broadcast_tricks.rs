//! Broadcast three ways (Section 4.2).
//!
//! Broadcasting one bit on a BSP(g) machine looks trivial — until you
//! notice the model lets a processor learn from a message it *didn't*
//! receive. This example runs, on the same machine:
//!
//! * the fan-out-⌈L/g⌉ tree (the classic optimal receive-only broadcast,
//!   Θ(L·lg p / lg(L/g))),
//! * the §4.2 ternary protocol that encodes the bit in *where* a message
//!   goes, informing three processors per round with one message:
//!   g·⌈lg₃ p⌉ when L ≤ g,
//! * and, for contrast, the globally-limited BSP(m) and QSM(m) broadcasts.
//!
//! Run with: `cargo run --release --example broadcast_tricks`

use parallel_bandwidth::algos::broadcast;
use parallel_bandwidth::models::{bounds, MachineParams};

fn main() {
    let p = 2048;
    let g = 32u64;
    let l = 16u64; // L ≤ g: the non-receipt regime
    let mp = MachineParams::from_gap(p, g, l);
    println!("machine: p = {p}, g = {g}, m = {}, L = {l}\n", mp.m);

    let tree = broadcast::bsp_g(mp);
    assert!(tree.ok);
    println!(
        "BSP(g) fan-out tree:        time {:>8.0}  ({} rounds; Θ(L·lg p/lg(L/g)) ≈ {:.0})",
        tree.time,
        tree.rounds,
        bounds::broadcast_bsp_g(p, g, l)
    );

    for bit in [false, true] {
        let tern = broadcast::ternary_nonreceipt(mp, bit);
        assert!(tern.ok, "every processor decoded bit={bit}");
        println!(
            "BSP(g) ternary, bit={}:  time {:>8.0}  ({} rounds of h = 1: g·⌈lg₃p⌉+L = {:.0})",
            bit as u8,
            tern.time,
            tern.rounds,
            bounds::broadcast_ternary_bsp_g(p, g) + l as f64,
        );
    }
    println!(
        "\nThm 4.1 lower bound for ANY deterministic BSP(g) broadcast: {:.0}",
        bounds::broadcast_bsp_g_lower(p, g, l)
    );

    let bm = broadcast::bsp_m(mp);
    let qm = broadcast::qsm_m(mp);
    assert!(bm.ok && qm.ok);
    println!("\nwith the same aggregate bandwidth but a *global* limit:");
    println!(
        "BSP(m) leader tree + fan-out: time {:>6.0}  (O(L·lg m/lg L + p/m + L) ≈ {:.0})",
        bm.time,
        bounds::broadcast_bsp_m(p, mp.m, l)
    );
    println!(
        "QSM(m) doubling + strided:    time {:>6.0}  (Θ(lg m + p/m) ≈ {:.0})",
        qm.time,
        bounds::broadcast_qsm_m(p, mp.m)
    );
    println!(
        "\nTable 1's broadcast separation Θ(lg p / lg g) = {:.1} shows up as {:.1}x here.",
        pbw_models::lg(p as f64) / pbw_models::lg(g as f64),
        tree.time / bm.time
    );
}
