//! Quickstart: one skewed h-relation, four prices.
//!
//! Builds a 512-processor machine with aggregate bandwidth m = 32
//! (equivalently, per-processor gap g = 16), throws a single-hot-sender
//! workload at it, and shows the paper's two headline effects:
//!
//! 1. the *same* communication costs Θ(g) more under a local bandwidth
//!    restriction than under a global one, and
//! 2. under the global restriction with an exponential overload penalty,
//!    *scheduling matters*: Unbalanced-Send lands within (1+ε) of the
//!    offline optimum while the oblivious schedule is penalized
//!    exponentially.
//!
//! Run with: `cargo run --release --example quickstart`

use parallel_bandwidth::models::{bounds, MachineParams, PenaltyFn};
use parallel_bandwidth::sched::exec::run_schedule_on_bsp;
use parallel_bandwidth::sched::schedule::audit_schedule;
use parallel_bandwidth::sched::schedulers::{EagerSend, OfflineOptimal, Scheduler, UnbalancedSend};
use parallel_bandwidth::sched::{evaluate_schedule, workload};
use parallel_bandwidth::sim::timeline;

fn main() {
    let mp = MachineParams::from_bandwidth(512, 32, 16);
    println!(
        "machine: p = {}, m = {}, g = {}, L = {}",
        mp.p, mp.m, mp.g, mp.l
    );

    // Processor 0 has 8192 messages to send (e.g. a skewed join output);
    // everyone else has 8.
    let wl = workload::single_hot_sender(mp.p, 8192, 8, 0xC0FFEE);
    println!(
        "workload: n = {} messages, h = {}, imbalance h/(n/p) = {:.1}",
        wl.n_flits(),
        wl.h(),
        wl.imbalance()
    );
    println!(
        "lower bounds: local g(x̄+ȳ)+L = {:.0}, global max(n/m, h) = {:.0}\n",
        bounds::routing_bsp_g(wl.xbar(), wl.ybar(), mp.g, mp.l),
        bounds::routing_global_lower(wl.n_flits(), mp.m, wl.xbar(), wl.ybar()),
    );

    let mut breakdown_rows = Vec::new();
    for (name, schedule) in [
        (
            "Unbalanced-Send (Thm 6.2)",
            UnbalancedSend::new(0.2).schedule(&wl, mp.m, 42),
        ),
        ("offline optimal", OfflineOptimal.schedule(&wl, mp.m, 0)),
        ("eager (oblivious)", EagerSend.schedule(&wl, mp.m, 0)),
    ] {
        // Trace-audit the schedule: per-term cost decomposition plus which
        // term binds under each model.
        let audit = audit_schedule(&schedule, &wl, mp, name);
        breakdown_rows.push((
            name,
            audit.breakdown,
            audit.dominant_bsp_g,
            audit.dominant_bsp_m,
        ));
        // Analytic pricing...
        let cost = evaluate_schedule(&schedule, &wl, mp.m, PenaltyFn::Exponential);
        // ...and a real end-to-end execution on the simulator, priced under
        // every model at once.
        let exec = run_schedule_on_bsp(&wl, &schedule, mp);
        let strip = timeline::render_strip(&exec.profile, mp.m, 60);
        println!("{name}:");
        println!("  network load over time ('#' = at capacity, '!' = overloaded):");
        println!("  [{strip}]");
        println!(
            "  makespan {} | max step load {} (m = {}) | c_m {:.0}",
            cost.makespan, cost.max_slot_load, mp.m, cost.c_m
        );
        println!(
            "  BSP(g) = {:.0} | BSP(m,exp) = {:.0} | BSP(m) / lower = {:.2}",
            exec.summary.bsp_g, exec.summary.bsp_m_exp, cost.ratio_to_opt
        );
        println!(
            "  local/global separation on this run: {:.1}x (g = {})\n",
            exec.summary.bsp_separation(),
            mp.g
        );
    }
    println!("cost breakdown per term (w | g·h local | h global | c_m | n/m | L), binding");
    println!("term under BSP(g) and BSP(m) last:");
    println!(
        "  {:<26} {:>6} {:>8} {:>6} {:>10} {:>6} {:>4}  {:>6} {:>6}",
        "scheduler", "w", "g·h", "h", "c_m", "n/m", "L", "BSP(g)", "BSP(m)"
    );
    for (name, b, dg, dm) in &breakdown_rows {
        println!(
            "  {:<26} {:>6.0} {:>8.0} {:>6.0} {:>10.3e} {:>6.0} {:>4.0}  {:>6} {:>6}",
            name,
            b.work,
            b.local_traffic,
            b.global_traffic,
            b.bandwidth,
            b.ss_bandwidth,
            b.latency,
            dg.to_string(),
            dm.to_string()
        );
    }
    println!();
    println!("Note how the eager schedule's BSP(m,exp) cost explodes — the network charge");
    println!("for a step with k·m injections is e^(k-1) — while Unbalanced-Send matches the");
    println!("offline optimum to within (1+ε) without knowing anything but its own counts.");
}
