//! Dynamic traffic under an adversary (Section 6.2).
//!
//! An Adversarial-Queuing-Theory adversary injects messages over a long
//! time line, always from the *same source* — the Theorem 6.5 pattern that
//! no locally-limited router can absorb beyond rate 1/g. We race the
//! BSP(g) interval router against Algorithm B on the BSP(m) at the same
//! aggregate bandwidth and plot their backlogs.
//!
//! Run with: `cargo run --release --example dynamic_network`

use parallel_bandwidth::adversary::{
    Adversary, AlgorithmB, AqtParams, BspGIntervalRouter, ComplianceChecker, SingleTargetAdversary,
};

fn sparkline(values: &[f64], max: f64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = max.max(1.0);
    values
        .iter()
        .map(|&v| BARS[((v / max) * 7.0).round().min(7.0) as usize])
        .collect()
}

fn main() {
    let p = 64usize;
    let g = 8u64;
    let m = p / g as usize;
    let w = 64u64;
    let intervals = 400;
    // Local rate β = 2/g: double what BSP(g) can serve from one processor,
    // a quarter of what the aggregate bandwidth allows.
    let beta = 2.0 / g as f64;
    let params = AqtParams {
        w,
        alpha: beta,
        beta,
    };
    println!("p = {p}, g = {g}, m = {m}; adversary: one source, rate β = {beta} = 2/g");

    // Verify the adversary actually honours its (w, α, β) restrictions.
    {
        let mut adv = SingleTargetAdversary::new(p, params, 0);
        let mut checker = ComplianceChecker::new(p, params);
        for t in 0..(w * 32) {
            checker.record(&adv.inject(t));
        }
        assert!(checker.is_compliant(), "{:?}", checker.violations());
        println!("adversary compliance over {} steps: OK", w * 32);
    }

    let mut adv = SingleTargetAdversary::new(p, params, 0);
    let trace_g = BspGIntervalRouter { p, g, l: 8, w }.run(&mut adv, intervals);
    let mut adv = SingleTargetAdversary::new(p, params, 0);
    let trace_m = AlgorithmB {
        p,
        m,
        w,
        eps: 0.3,
        seed: 11,
    }
    .run(&mut adv, intervals);

    let downsample = |xs: &[f64]| -> Vec<f64> {
        xs.chunks(xs.len() / 60)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect()
    };
    let dg = downsample(&trace_g.backlog_time);
    let dm = downsample(&trace_m.backlog_time);
    let max = dg.iter().chain(dm.iter()).cloned().fold(1.0f64, f64::max);
    println!("\nbacklog over time (time →, common scale):");
    println!("BSP(g)  {}", sparkline(&dg, max));
    println!("BSP(m)  {}", sparkline(&dm, max));
    println!(
        "\nBSP(g): growth {:+.2} time-units/interval → {}",
        trace_g.backlog_growth(),
        if trace_g.looks_stable() {
            "stable"
        } else {
            "UNSTABLE (queue grows forever)"
        }
    );
    println!(
        "BSP(m): growth {:+.2} time-units/interval → {} (mean batch service {:.1} of {} available)",
        trace_m.backlog_growth(),
        if trace_m.looks_stable() {
            "stable"
        } else {
            "UNSTABLE"
        },
        trace_m.mean_service(),
        w,
    );
    println!(
        "\ndelivered: BSP(g) {}/{} vs BSP(m) {}/{}",
        trace_g.delivered, trace_g.injected, trace_m.delivered, trace_m.injected
    );
    println!(
        "\nThe locally-limited router drowns at β > 1/g = {:.3} even though the network",
        1.0 / g as f64
    );
    println!("as a whole is barely loaded; the globally-limited router is bounded only by the");
    println!("aggregate rate m/(1+ε) (Theorems 6.5 and 6.7).");
}
