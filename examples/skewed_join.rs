//! A parallel hash-join shuffle with key skew — the irregular-application
//! scenario the paper's Section 6 opens with ("skew in the amount of new
//! values produced by the processors (e.g., an intermediate result of a
//! join operation)").
//!
//! Each processor holds a fragment of relations R and S. The join
//! repartitions both by hash of the join key; a Zipf-distributed key column
//! makes a few hash buckets enormous. The shuffle is an unbalanced
//! h-relation with *variable-length* messages (one message per
//! (source, target) pair, length = tuple count), so the flit-contiguous
//! scheduler of Section 6.1 applies.
//!
//! Run with: `cargo run --release --example skewed_join`

use parallel_bandwidth::models::{MachineParams, PenaltyFn};
use parallel_bandwidth::sched::flits::UnbalancedFlitSend;
use parallel_bandwidth::sched::schedulers::{EagerSend, Scheduler};
use parallel_bandwidth::sched::workload::Msg;
use parallel_bandwidth::sched::{evaluate_schedule, Workload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Sample a Zipf(θ)-ish key in [0, universe).
fn zipf_key<R: Rng>(rng: &mut R, universe: usize, theta: f64) -> usize {
    // Inverse-CDF approximation: rank ~ u^{-1/(θ-1)} for θ > 1.
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
    let rank = u.powf(-1.0 / (theta - 1.0)) as usize;
    rank.min(universe - 1)
}

fn main() {
    let mp = MachineParams::from_bandwidth(256, 16, 8);
    let tuples_per_proc = 4096;
    let universe = 100_000;
    let theta = 1.5;
    println!(
        "join shuffle: p = {}, m = {}, g = {}, {} tuples/processor, Zipf θ = {theta}",
        mp.p, mp.m, mp.g, tuples_per_proc
    );

    // Build the shuffle workload: count, per (source, target-bucket), how
    // many tuples hash there; one message per nonempty pair.
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let mut sends: Vec<Vec<Msg>> = Vec::with_capacity(mp.p);
    for _src in 0..mp.p {
        let mut per_target = vec![0u64; mp.p];
        for _ in 0..tuples_per_proc {
            let key = zipf_key(&mut rng, universe, theta);
            // Hash-partition the key space over processors.
            let target = (key.wrapping_mul(0x9E3779B9) >> 7) % mp.p;
            per_target[target] += 1;
        }
        sends.push(
            per_target
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(dest, &c)| Msg { dest, len: c })
                .collect(),
        );
    }
    let wl = Workload::new(sends);
    let recv = wl.recv_counts();
    let (min_in, max_in) = (
        recv.iter().min().copied().unwrap_or(0),
        recv.iter().max().copied().unwrap_or(0),
    );
    println!(
        "shuffle volume n = {} tuples; receiver skew: min {} / max {} (x̄ = {}, ȳ = {})",
        wl.n_flits(),
        min_in,
        max_in,
        wl.xbar(),
        wl.ybar()
    );
    println!(
        "imbalance h/(n/p) = {:.2} — Θ(g) regime starts at {}\n",
        wl.imbalance(),
        mp.g
    );

    let flit = UnbalancedFlitSend::new(0.25).schedule(&wl, mp.m, 7);
    let eager = EagerSend.schedule(&wl, mp.m, 0);
    let fc = evaluate_schedule(&flit, &wl, mp.m, PenaltyFn::Exponential);
    let ec = evaluate_schedule(&eager, &wl, mp.m, PenaltyFn::Exponential);

    println!("scheduled shuffle (Unbalanced-Flit-Send, tuples stream contiguously):");
    println!(
        "  send makespan {} steps | c_m {:.0} | model time max(h, c_m) = {:.0}",
        fc.makespan, fc.c_m, fc.model_time
    );
    println!(
        "  = {:.2}x the max(n/m, h) = {:.0} lower bound (the hot receiver is the binding term)",
        fc.ratio_to_opt, fc.opt_lower
    );
    println!("oblivious shuffle (everyone streams from step 0):");
    println!(
        "  makespan {} steps | c_m {:.2e}  ← exponential overload penalty",
        ec.makespan, ec.c_m
    );
    println!(
        "\nscheduling speedup under the global bandwidth model: {:.1}x",
        ec.model_time / fc.model_time
    );
    println!(
        "a locally-limited BSP(g) machine would need ≥ g·(x̄+ȳ) = {:.0} steps regardless",
        (mp.g * (wl.xbar() + wl.ybar())) as f64
    );
}
