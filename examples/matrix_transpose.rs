//! Distributed matrix transpose = total exchange (Section 3's application
//! list: "matrix transposition, two-dimensional Fourier Transform,
//! conversion between storage schemes...").
//!
//! A `(p·b) × (p·b)` matrix is row-block distributed; transposing it means
//! every processor ships one `b × b` block to every other — a perfectly
//! *balanced* total exchange. This example makes the paper's point from
//! the other side: with **no imbalance**, the locally- and globally-limited
//! models agree (no Θ(g) gap), and the offline wrap-around schedule is
//! exactly optimal.
//!
//! Run with: `cargo run --release --example matrix_transpose`

use parallel_bandwidth::algos::collectives;
use parallel_bandwidth::models::MachineParams;

fn main() {
    let mp = MachineParams::from_gap(64, 8, 8);
    let b = 8u64;
    println!(
        "transpose a {0}x{0} matrix ({1} blocks of {2}x{2}) on p = {3}, m = {4}, g = {5}",
        mp.p as u64 * b,
        mp.p * mp.p,
        b,
        mp.p,
        mp.m,
        mp.g
    );

    let out = collectives::matrix_transpose(mp, b, 1);
    assert!(out.measured.ok, "every block arrived intact");
    let nm = out.flits as f64 / mp.m as f64;
    println!("\nflits moved: {} (diagonal blocks stay local)", out.flits);
    println!(
        "BSP(m) cost: {:.0}  (n/m = {:.0} — within {:.2}x)",
        out.summary.bsp_m_exp,
        nm,
        out.summary.bsp_m_exp / nm
    );
    println!(
        "BSP(g) cost: {:.0}  (g·h = {:.0})",
        out.summary.bsp_g,
        (mp.g * (mp.p as u64 - 1) * b * b) as f64
    );
    println!(
        "separation:  {:.2}x — ≈1: balanced traffic shows NO local-vs-global gap",
        out.summary.bsp_separation()
    );

    let (te, te_summary) = collectives::total_exchange(mp);
    assert!(te.ok);
    println!(
        "\nunit total exchange for comparison: BSP(m) {:.0} vs BSP(g) {:.0} (ratio {:.2})",
        te_summary.bsp_m_exp,
        te_summary.bsp_g,
        te_summary.bsp_separation()
    );
    println!("\nContrast with `cargo run --example quickstart`, where a skewed relation");
    println!(
        "opens a full Θ(g) = {}x gap: the paper's thesis is exactly that the models",
        mp.g
    );
    println!("diverge *only* under imbalance.");
}
